#!/usr/bin/env python
"""Quickstart: compile C once, run it anywhere, fast where possible.

The five-minute tour of the library:

1. write a numerical kernel in MiniC (the C subset);
2. run the *offline* compiler: optimization + auto-vectorization +
   split-compilation annotations, producing portable PVI bytecode;
3. execute the same bytecode everywhere —
   * interpreted by the VM (pure portability),
   * JIT-compiled for an x86-class core (vector builtins -> SIMD),
   * JIT-compiled for a SPARC-class core (vector builtins scalarized);
4. compare the simulated cycle counts: same semantics, per-target
   performance;
5. serve it: the compilation service caches the offline artifact by
   content and fans deployment out over the whole target catalog
   concurrently, so repeated requests cost microseconds.

Run:  python examples/quickstart.py
"""

from repro.core import deploy, offline_compile
from repro.lang import types as ty
from repro.semantics import Memory
from repro.service import CompilationService, CompileRequest
from repro.targets import PPC, SPARC, X86, Simulator
from repro.targets.catalog import TARGETS
from repro.vm import VM

SOURCE = """
/* Scale-and-accumulate: the BLAS 'saxpy' kernel. */
void saxpy(int n, float a, float *x, float *y) {
    for (int i = 0; i < n; i++)
        y[i] = a * x[i] + y[i];
}

int checksum(float *y, int n) {
    int s = 0;
    for (int i = 0; i < n; i++)
        s += (int)y[i];
    return s;
}
"""

N = 256


def fresh_inputs(memory):
    x = memory.alloc_array(ty.F32, [0.5 * i for i in range(N)])
    y = memory.alloc_array(ty.F32, [1.0] * N)
    return x, y


def main():
    # -- 1+2: offline compilation ------------------------------------------
    artifact = offline_compile(SOURCE, name="quickstart")
    print("offline compiler vectorized:", artifact.vectorized_functions)
    print(f"offline analysis work: {artifact.offline_work} units "
          f"({artifact.offline_time * 1000:.1f} ms)\n")

    # -- 3a: the VM runs the bytecode as-is ---------------------------------
    memory = Memory()
    x, y = fresh_inputs(memory)
    vm = VM(artifact.bytecode, memory=memory)
    vm.call("saxpy", [N, 2.0, x, y])
    reference = vm.call("checksum", [y, N])
    print(f"VM (interpreter)      checksum = {reference}")

    # -- 3b: JIT per target --------------------------------------------------
    print(f"\n{'target':8} {'cycles':>10} {'code bytes':>11}  note")
    for target in (X86, SPARC, PPC):
        compiled = deploy(artifact, target, flow="split")
        memory = Memory()
        x, y = fresh_inputs(memory)
        simulator = Simulator(compiled, memory)
        result = simulator.run("saxpy", [N, 2.0, x, y])
        check = simulator.run("checksum", [y, N]).value
        assert check == reference, "targets must agree bit-for-bit"
        note = "SIMD" if target.has_simd else "scalarized"
        print(f"{target.name:8} {result.cycles:>10} "
              f"{compiled.total_code_bytes:>11}  {note}")

    print("\nSame bytecode, same results, target-appropriate speed —")
    print("that is the paper's 'performance portability' in one run.")

    # -- 4: cached multi-target deployment (the serving layer) --------------
    service = CompilationService()
    request = CompileRequest(source=SOURCE, name="quickstart",
                             targets=list(TARGETS.values()), flow="split")
    cold = service.submit(request)
    warm = service.submit(request)
    print(f"\nservice: deployed to {len(cold.deployments)} targets "
          f"({', '.join(cold.target_names)})")
    print(f"  cold request: {cold.total_latency * 1e3:8.2f} ms "
          f"(offline compile + {len(cold.deployments)} concurrent JITs)")
    print(f"  warm request: {warm.total_latency * 1e3:8.2f} ms "
          f"(artifact cache hit, every image memoized: "
          f"{warm.fully_cached})")
    stats = service.stats()
    print(f"  artifact hit rate {stats.artifact_hit_rate:.0%}, "
          f"deploy memo hit rate {stats.deploy_hit_rate:.0%}")
    service.shutdown()


if __name__ == "__main__":
    main()
