#!/usr/bin/env python
"""Figure 1, hands-on: where should optimization effort live?

Deploys the same program three ways and prints the trade-off triangle
the paper draws:

* offline-only — portable bytecode run through a cheap JIT: lowest
  compile cost, slowest code;
* online-only  — the JIT re-derives loop structure, dependences and
  vector code at run time: fastest code, heaviest compile budget;
* split        — the offline compiler did the analyses and left
  annotations: the same fast code at (almost) the cheap JIT's price.

Also demonstrates split register allocation on a register-starved
core, and that a corrupted annotation degrades performance only —
never correctness.

Run:  python examples/split_compilation_flows.py
"""

from dataclasses import replace

from repro.bench import format_table
from repro.bytecode.annotations import RegAllocAnnotation
from repro.core import compare_flows, offline_compile
from repro.jit import JITCompiler, JITOptions
from repro.semantics import Memory
from repro.targets import X86, Simulator
from repro.workloads import REGALLOC_CORPUS, TABLE1


def flows_demo():
    kernel = TABLE1["sum_u8"]
    artifact = offline_compile(kernel.source)

    def make_args(memory):
        return kernel.prepare(memory, 512, seed=3).args

    reports = compare_flows(artifact, X86, kernel.entry, make_args)
    print(format_table(
        ["flow", "offline work", "online work", "online analysis",
         "cycles"],
        [(r.flow, r.offline_work, r.online_work,
          r.online_analysis_work, r.cycles) for r in reports],
        title="sum_u8 on x86 under the three deployment flows"))
    print("\nReading: the split row matches online-only's cycles with "
          "zero online analysis —\nthe expensive thinking happened "
          "once, offline, for every future target.\n")


def regalloc_demo():
    source = REGALLOC_CORPUS["stats"]
    artifact = offline_compile(source, do_vectorize=False)
    starved = replace(X86, name="x86-k10", int_regs=10)

    rows = []
    for label, options in (
            ("local (2010 JIT)", JITOptions(use_annotations=False,
                                            regalloc_mode="local")),
            ("linear scan", JITOptions(use_annotations=False,
                                       regalloc_mode="linear")),
            ("split (annotated)", JITOptions(use_annotations=True))):
        compiled = JITCompiler(starved, options).compile_module(
            artifact.bytecode)
        memory = Memory()
        import random
        rng = random.Random(5)
        from repro.lang import types as ty
        a = memory.alloc_array(ty.I32, [rng.randrange(-999, 999)
                                        for _ in range(128)])
        result = Simulator(compiled, memory).run("stats", [a, 128])
        rows.append((label, result.spill_loads + result.spill_stores,
                     result.cycles, result.value))
    values = {row[3] for row in rows}
    assert len(values) == 1, "allocators must not change results"
    print(format_table(
        ["online allocator", "spill ops", "cycles", "result"],
        rows,
        title="Split register allocation on a 10-register core "
              "('stats' kernel)"))
    print()


def hostile_annotation_demo():
    kernel = TABLE1["sum_u8"]
    artifact = offline_compile(kernel.source)
    # Sabotage: invert every spill priority.
    for ann in artifact.bytecode.annotations:
        if isinstance(ann, RegAllocAnnotation):
            top = max(ann.priorities) + 1
            ann.priorities = [top - p for p in ann.priorities]
    starved = replace(X86, name="x86-k8", int_regs=8)
    compiled = JITCompiler(starved).compile_module(artifact.bytecode)
    memory = Memory()
    run = kernel.prepare(memory, 256, seed=8)
    result = Simulator(compiled, memory).run(kernel.entry, run.args)
    expected = sum(memory.read_array(
        __import__("repro.lang.types", fromlist=["U8"]).U8,
        run.args[0], 256))
    assert result.value == expected
    print("hostile-annotation run: result still correct "
          f"({result.value}), only the spill count suffers "
          f"({result.spill_loads + result.spill_stores} spill ops).")
    print("Annotations steer performance; the verifier and the JIT's "
          "validation keep them out of the trusted base.")


if __name__ == "__main__":
    flows_demo()
    regalloc_demo()
    hostile_annotation_demo()
