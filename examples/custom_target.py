#!/usr/bin/env python
"""Registering your own processor — one call, zero plumbing.

A target is *data*: an ISA capability set, register-file sizes, cycle
cost and code-size models, and the name of the backend that compiles
for it.  ``register_target(...)`` is the only integration point — the
new processor immediately deploys through the compilation service,
shows up in ``compare_flows``, and is schedulable by the KPN mapper
next to the built-in cores.  This mirrors ``examples/custom_flow.py``
on the orthogonal axis: flows made deployment configurations data;
the registry makes the processor catalog data.

Run:  python examples/custom_target.py
"""

from repro.bench import format_table
from repro.core import (
    Core, Platform, compare_flows, offline_compile, register_target,
)
from repro.service import CompilationService, CompileRequest
from repro.targets import (
    CostModel, SizeModel, TargetDesc, executor_for, target_names,
    unregister_target,
)
from repro.semantics import Memory
from repro.workloads import TABLE1


def register_tiny_dsp() -> TargetDesc:
    """A toy fixed-point DSP-class core: wide SIMD and single-cycle
    MACs, but a slow clock and painful division — the sort of
    accelerator a vendor would bolt onto an SoC.  Pure data; no
    edits under src/repro/."""
    return register_target(TargetDesc(
        name="tiny-dsp",
        description="toy fixed-point DSP: fast MACs, slow control",
        has_simd=True,
        int_regs=20,
        flt_regs=16,
        vec_regs=12,
        costs=CostModel(
            alu=1, mul=1, div=40, fp_alu=2, fp_mul=2, fp_div=36,
            load=1, store=1, branch=4, jump=2,
            vec_alu=1, vec_mul=1, vec_load=1, vec_store=1,
            vec_splat=1, vec_reduce=2,
        ),
        sizes=SizeModel(fixed=4, prologue_bytes=16),
        clock_scale=0.9,
    ))


def comparison_demo():
    kernel = TABLE1["sum_u8"]
    artifact = offline_compile(kernel.source)

    def make_args(memory):
        return kernel.prepare(memory, 256, seed=11).args

    print(f"registered targets: {', '.join(target_names())}\n")
    rows = []
    for target in ("tiny-dsp", "x86", "wasm32"):
        for report in compare_flows(artifact, target, kernel.entry,
                                    make_args,
                                    flows=["offline-only", "split"]):
            rows.append((report.target, report.flow, report.cycles,
                         report.code_bytes))
    print(format_table(
        ["target", "flow", "cycles", "code bytes"], rows,
        title="sum_u8 — custom 'tiny-dsp' next to x86 and the "
              "wasm32 stack backend"))
    print("\nThe 'tiny-dsp' rows came from ONE register_target call: "
          "no edits to core/, jit/, kpn/ or service/.\n")


def service_demo():
    kernel = TABLE1["saxpy_fp"]
    service = CompilationService()
    try:
        result = service.submit(CompileRequest(
            source=kernel.source, name="saxpy",
            targets=["tiny-dsp", "x86", "wasm32"], flow="split"))
        print(f"service fan-out landed on: "
              f"{', '.join(sorted(result.target_names))}")
        image = result.image_for("tiny-dsp")
        memory = Memory()
        run = kernel.prepare(memory, 512, seed=7)
        sim = executor_for(image, memory).run(kernel.entry, run.args)
        print(f"tiny-dsp saxpy_fp: {sim.cycles} cycles "
              f"({sim.instructions} instructions)\n")
    finally:
        service.shutdown()


def kpn_demo():
    from repro.kpn import (
        estimate_costs, greedy_map, host_only_map, simulate_makespan,
    )
    from repro.core import DeploymentManager
    from repro.workloads.pipeline import PIPELINE_SOURCE, build_pipeline

    service = CompilationService()
    try:
        artifact = service.artifact(PIPELINE_SOURCE)
        network = build_pipeline()
        platform = Platform("host + tiny-dsp",
                            [Core("host", 2), Core("tiny-dsp", 1)])
        images = DeploymentManager(platform,
                                   service=service).install(artifact)
        costs = estimate_costs(network, images, platform)
        baseline = simulate_makespan(
            network, platform, host_only_map(network, platform),
            costs, blocks=32)
        mapping = greedy_map(network, platform, costs)
        mapped = simulate_makespan(network, platform, mapping, costs,
                                   blocks=32)
        cores = platform.core_list()
        offloaded = sorted(actor for actor, core
                           in mapping.assignment.items()
                           if cores[core].name == "tiny-dsp")
        print(f"KPN pipeline on {platform.name}: host-only "
              f"{baseline:.0f} -> mapped {mapped:.0f} time units "
              f"({baseline / mapped:.2f}x)")
        print(f"actors offloaded to the custom core: "
              f"{', '.join(offloaded) or '(none)'}")
    finally:
        service.shutdown()


if __name__ == "__main__":
    register_tiny_dsp()
    try:
        comparison_demo()
        service_demo()
        kpn_demo()
    finally:
        unregister_target("tiny-dsp")
