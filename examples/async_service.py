#!/usr/bin/env python
"""The service plane, v2: async front end + pluggable executors.

The compilation service is the serving layer of the paper's split
story: offline artifacts cached by content, JIT images memoized per
(artifact, target, flow).  This demo shows the three API-v2 axes:

1. **async facade** — ``await service.deploy(request)`` and
   ``asyncio.gather`` batch fan-out over the whole target catalog;
2. **request coalescing** — a thundering herd of identical concurrent
   requests collapses onto one compilation;
3. **executor backends** — the same deployment served inline (for
   deterministic tests), on the default thread pool, or on worker
   *processes* that push cold JIT fan-out past the GIL.

Run:  python examples/async_service.py
"""

import asyncio
import time

from repro.service import (
    AsyncCompilationService, CompilationService, CompileRequest,
    executor_names,
)
from repro.targets.registry import registered_targets
from repro.workloads import ALL_KERNELS

KERNELS = ("saxpy_fp", "sum_u8", "sdot")
CATALOG = [t.name for t in registered_targets()]


def requests():
    return [CompileRequest(source=ALL_KERNELS[name].source, name=name,
                           targets=CATALOG, flow="split")
            for name in KERNELS]


async def batch_demo():
    print("== async batch fan-out " + "=" * 40)
    async with AsyncCompilationService() as service:
        start = time.perf_counter()
        results = await service.submit_batch(requests())
        cold = time.perf_counter() - start
        start = time.perf_counter()
        warm_results = await service.submit_batch(requests())
        warm = time.perf_counter() - start
        for result in results:
            print(f"  {result.name:10s} -> {len(result.deployments)} "
                  f"targets, flow={result.flow}, "
                  f"cache_hit={result.artifact_cache_hit}")
        print(f"  cold batch: {cold * 1e3:7.2f} ms")
        print(f"  warm batch: {warm * 1e3:7.2f} ms "
              f"(fully cached: "
              f"{all(r.fully_cached for r in warm_results)})")

        print("\n== request coalescing " + "=" * 41)
        herd = [service.submit(CompileRequest(
            source=ALL_KERNELS["dscal_fp"].source, name="dscal",
            targets=CATALOG)) for _ in range(16)]
        settled = await asyncio.gather(*herd)
        stats = service.stats()
        print(f"  16 concurrent identical requests -> "
              f"{len({id(r) for r in settled})} served task(s), "
              f"{stats.coalesced_requests} coalesced")
        print(f"  offline compiles (stores): {stats.artifact_stores}, "
              f"JIT compiles: {stats.deploy_compiles}")
        shards = stats.as_dict()["artifact"]["shards"]
        busy = sum(1 for s in shards if s["stores"])
        print(f"  artifact cache: {len(shards)} shards "
              f"({busy} carrying traffic)")


def executor_demo():
    print("\n== executor backends " + "=" * 42)
    source = ALL_KERNELS["fir"].source
    for name in executor_names():
        service = CompilationService(executor=name)
        try:
            start = time.perf_counter()
            result = service.submit(CompileRequest(
                source=source, name="fir", targets=CATALOG))
            elapsed = time.perf_counter() - start
            executor_stats = \
                service.stats().deploy_executors[name]
            print(f"  {name:8s} cold fan-out over "
                  f"{len(result.deployments)} targets: "
                  f"{elapsed * 1e3:7.2f} ms "
                  f"(jobs={executor_stats['submitted']}, "
                  f"failed={executor_stats['failed']})")
        finally:
            service.shutdown()
    print("  (the process executor pays fork+pickle overhead here; "
          "it wins on multi-core")
    print("   machines with heavy cold fan-out — see "
          "benchmarks/bench_service_async.py)")


def main():
    asyncio.run(batch_demo())
    executor_demo()


if __name__ == "__main__":
    main()
