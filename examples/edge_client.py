#!/usr/bin/env python
"""The serving edge, end to end: boot it, speak HTTP to it.

The edge is the network boundary of the compilation service — the
piece that turns the split-compilation story into something
"millions of users" can actually call.  This demo boots a real
:class:`EdgeServer` on an ephemeral port (the same thing
``pvi-serve`` runs) and walks the wire contract:

1. **auth** — a missing key is a 401; the tenant's key opens the door;
2. **deploy** — POST /deploy compiles once offline and fans out to
   two targets, all metadata on the wire;
3. **coalescing** — a herd of identical concurrent requests collapses
   onto one queue slot and one compilation;
4. **quota** — a token-bucket tenant runs dry and gets a structured
   429 with Retry-After;
5. **observability** — GET /stats shows per-tenant counters, queue
   state and executor routing.

Run:  python examples/edge_client.py
"""

import asyncio
import json

from repro.service.edge import (
    EdgeClient, EdgeConfig, EdgeServer, Tenant, TenantTable,
)
from repro.workloads import ALL_KERNELS

SAXPY = ALL_KERNELS["saxpy_fp"].source


async def main():
    tenants = TenantTable([
        Tenant("acme", api_key="key-acme", rate=1000, burst=100),
        Tenant("tiny", api_key="key-tiny", rate=0.001, burst=2),
    ])
    config = EdgeConfig(port=0, workers=4, queue_depth=16,
                        cold_executor="inline",
                        warm_executor="inline", tenants=tenants)

    async with EdgeServer(config) as edge:
        print(f"== edge up on 127.0.0.1:{edge.port} " + "=" * 30)

        # 1. auth: no key -> 401, structured error body
        async with EdgeClient("127.0.0.1", edge.port) as anon:
            status, _, body = await anon.deploy(SAXPY, ["x86"])
            print(f"no API key       -> {status} "
                  f"{body['error']['code']}")

        async with EdgeClient("127.0.0.1", edge.port,
                              api_key="key-acme") as client:
            # 2. deploy: one offline compile, two targets
            status, _, body = await client.deploy(
                SAXPY, ["x86", "arm"], name="saxpy")
            print(f"deploy saxpy     -> {status} "
                  f"artifact={body['artifact_key'][:12]}... "
                  f"targets={sorted(body['deployments'])}")

            # 3. coalescing: 6 identical requests, one compilation
            results = await asyncio.gather(*(
                client_n.deploy(SAXPY, ["dsp"], name="herd")
                for client_n in [EdgeClient("127.0.0.1", edge.port,
                                            api_key="key-acme")
                                 for _ in range(6)]))
            statuses = [status for status, _, _ in results]
            print(f"herd of 6        -> {statuses}")

        # 4. quota: the tiny tenant has burst=2 and ~no refill
        async with EdgeClient("127.0.0.1", edge.port,
                              api_key="key-tiny") as tiny:
            for index in range(3):
                status, headers, body = await tiny.deploy(
                    SAXPY, ["x86"], name=f"t{index}")
                note = "" if status == 200 else \
                    f" ({body['error']['code']}, retry after " \
                    f"{headers.get('retry-after')}s)"
                print(f"tiny request {index}   -> {status}{note}")

        # 5. stats: the whole serving story in one JSON document
        async with EdgeClient("127.0.0.1", edge.port,
                              api_key="key-acme") as client:
            _, _, stats = await client.stats()
        edge_stats = stats["edge"]
        print("== /stats " + "=" * 52)
        print(f"accepted={edge_stats['accepted']} "
              f"coalesced={edge_stats['coalesced']} "
              f"shed={edge_stats['shed']}")
        print("tenants:", json.dumps(
            {name: {"accepted": t["accepted"],
                    "shed": t["shed"]["total"]}
             for name, t in edge_stats["tenants"].items()}))
        print("routing:", json.dumps(
            {route: edge_stats["routes"][route]["submitted"]
             for route in ("cold", "warm")}))
        print(f"service: artifact stores="
              f"{stats['service']['artifact']['stores']} "
              f"facts_warm="
              f"{stats['service']['artifact']['facts_warm']}")


if __name__ == "__main__":
    asyncio.run(main())
