#!/usr/bin/env python
"""Iterative compilation: measure, don't predict.

For kernels where heuristics disagree with reality, try configurations
and keep what is measurably fastest on the deployment target.  The
offline compiler can afford this (the paper suggests the virtual
machine monitor as the natural driver); the winning configuration
ships as ordinary bytecode.

This example hill-climbs two kernels on two targets and prints the
search history, showing a case where the default pipeline is already
optimal (vectorized saxpy on x86) and one where search finds real
improvements the default would not risk (unrolling the sequential
prefix sum).

Run:  python examples/iterative_tuning.py
"""

from repro.bench import format_table
from repro.iterative import default_configuration, hill_climb
from repro.targets import SPARC, X86
from repro.workloads import ALL_KERNELS

CASES = [
    ("saxpy_fp", X86),
    ("prefix_sum", X86),
    ("prefix_sum", SPARC),
    ("fir", SPARC),
]


def main():
    rows = []
    for name, target in CASES:
        kernel = ALL_KERNELS[name]
        result = hill_climb(kernel, target, budget=14, n=192)
        rows.append((name, target.name, result.default_cycles,
                     result.best_cycles, result.best.label(),
                     result.improvement, result.evaluations))

    print(format_table(
        ["kernel", "target", "default", "best", "config", "speedup",
         "evals"],
        rows,
        title="Hill-climbing the optimization space "
              f"(default = {default_configuration().label()})"))

    name, target = "prefix_sum", X86
    result = hill_climb(ALL_KERNELS[name], target, budget=14, n=192)
    print(f"\nsearch history for {name} on {target.name}:")
    for config, cycles in result.history:
        marker = " <- best" if cycles == result.best_cycles else ""
        print(f"  {config.label():10} {cycles:8} cycles{marker}")


if __name__ == "__main__":
    main()
