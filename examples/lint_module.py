#!/usr/bin/env python
"""Lint a module with the dataflow-analysis plane.

The offline compiler's new static-analysis plane (DESIGN.md §6) runs a
worklist dataflow solver over every function's fuel-block CFG and
records the results in a picklable FactsTable.  The same facts serve
three consumers:

1. the tier-2 JITs, which read their lane/bounds/register proofs from
   the table instead of re-deriving them (and elide OSR entry guards
   the facts prove redundant);
2. ``pvi-lint`` — findings with severities, rendered with disassembly
   context (also a console script: ``pvi-lint --workloads``);
3. the compilation service's admission gate, which refuses to deploy
   artifacts with error-severity findings.

Run:  python examples/lint_module.py
"""

from repro.analysis import (
    AdmissionError, lint_bytecode_module, module_facts,
)
from repro.bytecode.opcodes import BCInstr
from repro.core import offline_compile
from repro.service import CompilationService

SOURCE = """
int dot(int *a, int *b, int n) {
    int s = 0;
    for (int i = 0; i < n; i++)
        s += a[i] * b[i];
    return s;
}
"""


def main():
    # -- 1: facts for a clean module ----------------------------------------
    artifact = offline_compile(SOURCE, name="dot")
    table = module_facts(artifact.bytecode)
    facts = table.get("dot")
    print("facts for 'dot':")
    print(f"  fuel blocks:        {len(facts.blocks)} "
          f"({len(facts.reachable)} reachable)")
    print(f"  access widths seen: {sorted(facts.access_widths)}")
    print(f"  value ranges at entry of each block: "
          f"{len(facts.ranges)} states")

    findings = lint_bytecode_module(artifact.bytecode)
    print(f"  lint findings:      {len(findings)} "
          "(clean module, nothing to report)\n")

    # -- 2: make the module suspicious and lint again -----------------------
    # Append an unreachable tail block: still verifiable, but the
    # reachability analysis flags it as dead weight.
    func = artifact.bytecode.functions["dot"]
    func.code.append(BCInstr("const", "i32", 0))
    func.code.append(BCInstr("ret", None, None))
    findings = lint_bytecode_module(artifact.bytecode)
    print("after appending an unreachable tail block:")
    for finding in findings:
        print(f"  {finding}")

    # -- 3: the admission gate in the serving layer -------------------------
    # An unverifiable artifact (stack underflow at pc 0) never reaches
    # a JIT: the service rejects it with a structured diagnostic.
    broken = offline_compile(SOURCE, name="dot_broken")
    broken.bytecode.functions["dot"].code.insert(
        0, BCInstr("pop", None, None))
    service = CompilationService(executor="inline")
    try:
        service.deploy(broken, "x86")
    except AdmissionError as exc:
        print("\nadmission gate refused deployment:")
        print(f"  {exc}")
    stats = service.stats()
    print(f"  lint rejections counted in ServiceStats: "
          f"{stats.lint_rejections}")
    service.shutdown()


if __name__ == "__main__":
    main()
