#!/usr/bin/env python
"""Registering your own deployment flow — one call, zero plumbing.

A flow is *data*: which passes run offline (and in what order), what
the JIT does online, and which bytecode flavour ships to the device.
``register_flow(...)`` is the only integration point — the new flow
immediately works in ``compare_flows``, deploys through the
compilation service under its own cache key, joins the iterative
search space, and reports per-pass instrumentation like the built-in
flows.

Run:  python examples/custom_flow.py
"""

from repro.bench import format_table
from repro.core import compare_flows, offline_compile
from repro.flows import (
    Flow, PipelineSpec, flow_names, register_flow, unregister_flow,
)
from repro.jit import JITOptions
from repro.service import CompilationService, CompileRequest
from repro.targets import X86
from repro.targets.catalog import TARGETS
from repro.workloads import TABLE1


def register_lean_flow():
    """A deliberately lean flow: cleanup passes only (no LICM, no
    if-conversion), a 2x unroll, vectorization on — the sort of point
    an embedded vendor might pick to trade offline compile time for
    code quality."""
    return register_flow(Flow(
        "lean-unroll",
        pipeline=PipelineSpec(
            passes=("constfold", "copyprop", "cse", "dce",
                    "simplify-cfg"),
            unroll=2, vectorize=True),
        jit=JITOptions(use_annotations=True),
        bytecode="vector",
        description="cleanup-only offline pipeline with 2x unrolling"))


def comparison_demo():
    kernel = TABLE1["sum_u8"]
    artifact = offline_compile(kernel.source)

    def make_args(memory):
        return kernel.prepare(memory, 256, seed=11).args

    print(f"registered flows: {', '.join(flow_names())}\n")
    reports = compare_flows(artifact, X86, kernel.entry, make_args)
    print(format_table(
        ["flow", "offline work", "online work", "online analysis",
         "cycles"],
        [(r.flow, r.offline_work, r.online_work,
          r.online_analysis_work, r.cycles) for r in reports],
        title="sum_u8 on x86 — every registered flow, custom included"))
    print("\nThe custom 'lean-unroll' row came from ONE register_flow "
          "call: no edits to core/, jit/ or service/.\n")


def per_pass_report_demo():
    kernel = TABLE1["saxpy_fp"]
    lean = register_flow(Flow(
        "lean-report", pipeline=PipelineSpec(unroll=2)),
        replace=True)
    artifact = offline_compile(kernel.source, pipeline=lean.pipeline)
    print("per-pass offline budget of 'lean-report' on saxpy_fp")
    print("(work units, wall ms, runs, runs that changed the IR, net "
          "IR size delta; 'scalar:' rows are the portable baseline "
          "flavour):\n")
    print(artifact.pass_report())
    unregister_flow("lean-report")
    print()


def service_demo():
    service = CompilationService()
    targets = list(TARGETS.values())
    request = CompileRequest(source=TABLE1["sum_u8"].source,
                             name="sum_u8", targets=targets,
                             flow="lean-unroll")
    first = service.submit(request)
    second = service.submit(request)
    stats = service.stats()
    print(f"service request under 'lean-unroll' across "
          f"{len(targets)} targets:")
    print(f"  first:  artifact cache hit = {first.artifact_cache_hit}, "
          f"offline pass work = {sum(first.offline_pass_work.values())}")
    print(f"  second: fully cached = {second.fully_cached}")
    print(f"  per-flow deploy stats: {stats.deploy_by_flow}")
    service.shutdown()


if __name__ == "__main__":
    register_lean_flow()
    try:
        comparison_demo()
        per_pass_report_demo()
        service_demo()
    finally:
        unregister_flow("lean-unroll")
