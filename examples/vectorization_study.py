#!/usr/bin/env python
"""Reproduce the paper's Table 1 interactively, then look inside.

Beyond the headline table this example shows *why* the numbers come
out the way they do, by disassembling the portable bytecode and
dumping the per-target native code for one kernel — the whole split
story in one place:

* the offline compiler emits `vec.*` builtins once;
* the x86 JIT maps them onto SIMD instructions;
* the PPC JIT unrolls them into scalar registers;
* the SPARC JIT (16-lane u8 vector vs 16 usable registers) emulates
  them through a memory temporary — which is exactly why the paper's
  UltraSparc column dips below 1.0 for the sub-word kernels.

Run:  python examples/vectorization_study.py
"""

from repro.bench import format_table, run_table1
from repro.bytecode import disassemble
from repro.core import deploy, offline_compile
from repro.workloads import TABLE1


def main():
    rows = run_table1(n=512)
    print(format_table(
        ["benchmark", "target", "scalar", "vect.", "relative", "paper"],
        [(r.kernel, r.target, r.scalar_cycles, r.vector_cycles,
          r.relative, r.paper_relative) for r in rows],
        title="Table 1 reproduction (simulated cycles, n=512)"))

    # ---- look inside one kernel ------------------------------------------
    kernel = TABLE1["sum_u8"]
    artifact = offline_compile(kernel.source)

    print("\n===== portable bytecode (one copy, every target) =====")
    print(disassemble(artifact.bytecode))

    for target_name, flow_note in (("x86", "vector builtins -> SIMD"),
                                   ("sparc", "memory-temp emulation"),
                                   ("ppc", "memory-temp emulation")):
        from repro.targets import target_by_name
        target = target_by_name(target_name)
        compiled = deploy(artifact, target, "split")
        func = compiled[kernel.entry]
        print(f"\n===== {target_name} native code ({flow_note}; "
              f"{len(func.code)} instructions, "
              f"{func.code_bytes} bytes) =====")
        for index, instr in enumerate(func.code[:28]):
            print(f"  {index:3}: {instr!r}")
        if len(func.code) > 28:
            print(f"  ... {len(func.code) - 28} more")


if __name__ == "__main__":
    main()
