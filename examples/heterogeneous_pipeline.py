#!/usr/bin/env python
"""Whole-platform programming: a KPN audio pipeline on a simulated SoC.

The paper's closing argument: ship one bytecode application, JIT it
for *every* core of a heterogeneous multiprocessor — host controller,
DSP accelerator, big core — and let the runtime map computations where
they run best.  This example:

1. compiles a 12-actor stereo audio pipeline (mixed vectorizable /
   control-heavy stages) to annotated bytecode;
2. runs it functionally under two different schedulers and checks the
   outputs are identical (Kahn determinism);
3. installs it on three platforms of growing heterogeneity, measures
   per-actor per-core costs, maps with a greedy scheduler, and
   compares makespans against pinning everything on the host.

Run:  python examples/heterogeneous_pipeline.py
"""

import math

from repro.bench import format_table
from repro.core import Core, DeploymentManager, Platform, offline_compile
from repro.kpn import (
    NetworkRuntime, estimate_costs, greedy_map, host_only_map,
    simulate_makespan,
)
from repro.targets import DSP, HOST, X86
from repro.workloads.pipeline import PIPELINE_SOURCE, build_pipeline

BLOCKS = 48


def main():
    artifact = offline_compile(PIPELINE_SOURCE, name="audio")
    network = build_pipeline()
    print(f"pipeline: {len(network.actors)} actors, "
          f"{len(network.channels)} channels")
    print("offline-vectorized actors:",
          ", ".join(artifact.vectorized_functions), "\n")

    # ---- functional run: determinism under scheduling ---------------------
    runtime = NetworkRuntime(network, artifact.bytecode)
    signal = [math.sin(i * 0.13) + 0.3 * math.sin(i * 0.031)
              for i in range(256)]
    out_a = runtime.run({"in_l": signal, "in_r": signal})
    out_b = runtime.run({"in_l": signal, "in_r": signal},
                        schedule_seed=1234)
    assert out_a == out_b, "Kahn networks are scheduling-independent"
    rms = out_a["out_rms"][-1]
    print(f"functional run ok (deterministic); final block RMS-ish "
          f"statistic = {rms:.4f}\n")

    # ---- mapping study ------------------------------------------------------
    platforms = [
        Platform("host x4", [Core(HOST, 4)]),
        Platform("host x2 + dsp", [Core(HOST, 2), Core(DSP, 1)]),
        Platform("host x2 + dsp + big",
                 [Core(HOST, 2), Core(DSP, 1), Core(X86, 1)]),
    ]
    rows = []
    last_assignment = {}
    for platform in platforms:
        manager = DeploymentManager(platform)
        images = manager.install(artifact)
        costs = estimate_costs(network, images, platform)
        base = simulate_makespan(network, platform,
                                 host_only_map(network, platform),
                                 costs, BLOCKS)
        mapping = greedy_map(network, platform, costs)
        mapped = simulate_makespan(network, platform, mapping, costs,
                                   BLOCKS)
        rows.append((platform.name, f"{base:.0f}", f"{mapped:.0f}",
                     base / mapped))
        cores = platform.core_list()
        last_assignment = {actor: cores[c].name
                           for actor, c in mapping.assignment.items()}

    print(format_table(
        ["platform", "host-only", "mapped", "speedup"], rows,
        title=f"Makespan for {BLOCKS} blocks (common time units)"))

    print("\nPlacement on the richest platform:")
    for actor, core in sorted(last_assignment.items()):
        print(f"  {actor:10} -> {core}")
    print("\nVector-friendly stages migrate to the DSP; the branchy "
          "biquad/envelope stages prefer the big core;\nthe host "
          "keeps the cheap glue. No actor was compiled specially for "
          "any of this — one bytecode, three JITs.")


if __name__ == "__main__":
    main()
