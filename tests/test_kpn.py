"""KPN tests: graph structure, determinism, mapping, makespan."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Core, DeploymentManager, Platform, offline_compile
from repro.kpn import (
    NetworkRuntime, estimate_costs, greedy_map, host_only_map,
    simulate_makespan,
)
from repro.kpn.graph import ProcessNetwork
from repro.targets import DSP, HOST, X86
from repro.workloads.pipeline import PIPELINE_SOURCE, build_pipeline


@pytest.fixture(scope="module")
def artifact():
    return offline_compile(PIPELINE_SOURCE)


@pytest.fixture(scope="module")
def network():
    return build_pipeline()


def make_signal(n=192):
    return [math.sin(i * 0.21) * (1.0 + 0.4 * math.sin(i * 0.017))
            for i in range(n)]


class TestGraph:
    def test_pipeline_structure(self, network):
        assert len(network.actors) == 12
        assert set(network.input_channels()) == {"in_l", "in_r"}
        assert set(network.output_channels()) == {"out_main", "out_rms"}

    def test_topological_order_respects_edges(self, network):
        order = network.topological_order()
        position = {name: i for i, name in enumerate(order)}
        for name in network.actors:
            for pred in network.predecessors(name):
                assert position[pred] < position[name]

    def test_single_consumer_enforced(self):
        net = ProcessNetwork("bad")
        net.add_actor("a", "f", [], ["c"])
        net.add_actor("b", "g", ["c"], [])
        with pytest.raises(ValueError):
            net.add_actor("b2", "g", ["c"], [])

    def test_single_producer_enforced(self):
        net = ProcessNetwork("bad")
        net.add_actor("a", "f", [], ["c"])
        with pytest.raises(ValueError):
            net.add_actor("a2", "f", [], ["c"])

    def test_cycle_detected(self):
        net = ProcessNetwork("loop")
        net.add_actor("a", "f", ["x"], ["y"])
        net.add_actor("b", "g", ["y"], ["x"])
        with pytest.raises(ValueError):
            net.topological_order()


class TestDeterminism:
    def test_outputs_independent_of_schedule(self, artifact, network):
        runtime = NetworkRuntime(network, artifact.bytecode)
        signal = make_signal()
        reference = runtime.run({"in_l": signal, "in_r": signal})
        for seed in (1, 2, 3):
            shuffled = runtime.run({"in_l": signal, "in_r": signal},
                                   schedule_seed=seed)
            assert shuffled == reference

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_determinism_property(self, artifact, network, seed):
        runtime = NetworkRuntime(network, artifact.bytecode)
        signal = make_signal(128)
        a = runtime.run({"in_l": signal, "in_r": signal},
                        schedule_seed=seed)
        b = runtime.run({"in_l": signal, "in_r": signal},
                        schedule_seed=seed + 1)
        assert a == b

    def test_output_lengths_match_input_blocks(self, artifact, network):
        runtime = NetworkRuntime(network, artifact.bytecode)
        signal = make_signal(network.block_size * 3)
        outputs = runtime.run({"in_l": signal, "in_r": signal})
        for samples in outputs.values():
            assert len(samples) == network.block_size * 3

    def test_clipper_bounds_output(self, artifact, network):
        runtime = NetworkRuntime(network, artifact.bytecode)
        loud = [5.0] * 128
        outputs = runtime.run({"in_l": loud, "in_r": loud})
        # after clip at +-0.9 and AGC, magnitudes stay bounded
        assert all(abs(v) <= 4.0 for v in outputs["out_main"])


class TestMapping:
    @pytest.fixture(scope="class")
    def platform(self):
        return Platform("soc", [Core(HOST, 2), Core(DSP, 1), Core(X86, 1)])

    @pytest.fixture(scope="class")
    def costs(self, artifact, network, platform):
        manager = DeploymentManager(platform)
        images = manager.install(artifact)
        return estimate_costs(network, images, platform)

    def test_costs_cover_all_pairs(self, network, platform, costs):
        for actor in network.actors:
            for target in platform.kinds():
                assert (actor, target.name) in costs
                assert costs[(actor, target.name)] > 0

    def test_dsp_wins_on_elementwise_actors(self, costs):
        # the gain stage is vectorized; the DSP must beat the host
        assert costs[("gain_l", "dsp")] < costs[("gain_l", "host")]

    def test_host_only_assigns_everything_to_host(self, network,
                                                  platform):
        mapping = host_only_map(network, platform)
        cores = platform.core_list()
        assert all(cores[c].name == "host"
                   for c in mapping.assignment.values())

    def test_greedy_beats_host_only(self, network, platform, costs):
        baseline = simulate_makespan(
            network, platform, host_only_map(network, platform), costs,
            blocks=24)
        mapped = simulate_makespan(
            network, platform, greedy_map(network, platform, costs),
            costs, blocks=24)
        assert mapped < baseline

    def test_makespan_scales_with_blocks(self, network, platform, costs):
        mapping = greedy_map(network, platform, costs)
        short = simulate_makespan(network, platform, mapping, costs, 8)
        long = simulate_makespan(network, platform, mapping, costs, 32)
        assert long > short * 2.5

    def test_makespan_zero_for_zero_blocks(self, network, platform,
                                           costs):
        mapping = greedy_map(network, platform, costs)
        assert simulate_makespan(network, platform, mapping, costs,
                                 0) == 0.0


class TestDeploymentManager:
    def test_one_image_per_core_kind(self, artifact):
        platform = Platform("p", [Core(HOST, 3), Core(DSP, 2)])
        manager = DeploymentManager(platform)
        images = manager.install(artifact)
        assert set(images) == {"host", "dsp"}

    def test_hw_hint_prefers_simd_core(self, artifact):
        platform = Platform("p", [Core(HOST, 1), Core(DSP, 1)])
        manager = DeploymentManager(platform)
        manager.install(artifact)
        # 'gain' is vectorized -> wants SIMD -> should point at the DSP
        assert manager.preferred_core("gain").name == "dsp"
