"""Vectorizer tests: recognition, rejection, and differential execution."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frontend import lower_source
from repro.ir import VLoad, VReduce, VStore, verify_function
from repro.ir.interp import IRInterpreter
from repro.lang import types as ty
from repro.opt import PassManager, standard_passes
from repro.opt.unroll import unroll
from repro.opt.vectorize import vectorize
from repro.semantics import Memory

# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------

TABLE1_SOURCES = {
    "vecadd": """
        void vecadd(float *a, float *b, float *c, int n) {
            for (int i = 0; i < n; i++) c[i] = a[i] + b[i];
        }""",
    "saxpy": """
        void saxpy(int n, float a, float *x, float *y) {
            for (int i = 0; i < n; i++) y[i] = a * x[i] + y[i];
        }""",
    "dscal": """
        void dscal(int n, double a, double *x) {
            for (int i = 0; i < n; i++) x[i] = a * x[i];
        }""",
    "max_u8": """
        int max_u8(unsigned char *a, int n) {
            int m = 0;
            for (int i = 0; i < n; i++) if (a[i] > m) m = a[i];
            return m;
        }""",
    "sum_u8": """
        int sum_u8(unsigned char *a, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += a[i];
            return s;
        }""",
    "sum_u16": """
        int sum_u16(unsigned short *a, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += a[i];
            return s;
        }""",
}


def compile_fn(source, do_vectorize):
    module = lower_source(source)
    func = next(iter(module))
    PassManager(standard_passes(), verify=True).run(func)
    if do_vectorize:
        result = vectorize(func)
        verify_function(func)
        assert result.changed, "expected the loop to vectorize"
    return module, func


class TestRecognition:
    @pytest.mark.parametrize("name", sorted(TABLE1_SOURCES))
    def test_table1_kernels_vectorize(self, name):
        _, func = compile_fn(TABLE1_SOURCES[name], do_vectorize=True)
        assert func.vector_loops

    def test_lane_counts(self):
        expected = {"vecadd": 4, "saxpy": 4, "dscal": 2,
                    "max_u8": 16, "sum_u8": 16, "sum_u16": 8}
        for name, lanes in expected.items():
            _, func = compile_fn(TABLE1_SOURCES[name], do_vectorize=True)
            assert func.vector_loops[0].lanes == lanes, name

    def test_reduction_metadata(self):
        _, func = compile_fn(TABLE1_SOURCES["max_u8"], do_vectorize=True)
        info = func.vector_loops[0]
        assert info.kind == "reduction"
        assert info.reduce_op == "max"
        assert info.acc_type == "i32"
        assert info.noalias_bases      # the assumption is recorded

    def test_elementwise_metadata(self):
        _, func = compile_fn(TABLE1_SOURCES["saxpy"], do_vectorize=True)
        info = func.vector_loops[0]
        assert info.kind == "elementwise"
        assert info.reduce_op is None

    def test_vector_ops_present(self):
        _, func = compile_fn(TABLE1_SOURCES["sum_u8"], do_vectorize=True)
        instrs = list(func.instructions())
        assert any(isinstance(i, VLoad) for i in instrs)
        assert any(isinstance(i, VReduce) for i in instrs)

    def test_scalar_epilogue_preserved(self):
        _, func = compile_fn(TABLE1_SOURCES["saxpy"], do_vectorize=True)
        info = func.vector_loops[0]
        labels = [b.label for b in func.blocks]
        assert info.vector_header in labels
        assert info.scalar_header in labels


class TestRejection:
    def rejects(self, source):
        module = lower_source(source)
        func = next(iter(module))
        PassManager(standard_passes(), verify=True).run(func)
        result = vectorize(func)
        assert not result.changed

    def test_loop_carried_dependence(self):
        self.rejects("""
            void prefix(int *a, int n) {
                for (int i = 0; i < n; i++) a[i + 1] = a[i];
            }""")

    def test_strided_store(self):
        self.rejects("""
            void evens(int *a, int n) {
                for (int i = 0; i < n; i++) a[2 * i] = i;
            }""")

    def test_gather_load(self):
        self.rejects("""
            int gather(int *a, int *idx, int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += a[idx[i]];
                return s;
            }""")

    def test_call_in_body(self):
        self.rejects("""
            int g(int x);
            int g(int x) { return x + 1; }
            int f(int *a, int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += g(a[i]);
                return s;
            }""")

    def test_induction_variable_used_as_value(self):
        self.rejects("""
            void iota_plus(int *a, int n) {
                for (int i = 0; i < n; i++) a[i] = a[i] + i;
            }""")

    def test_non_unit_step(self):
        self.rejects("""
            void skip(float *a, int n) {
                for (int i = 0; i < n; i += 2) a[i] = 0.0f;
            }""")

    def test_mixed_element_sizes(self):
        self.rejects("""
            void widen(short *src, int *dst, int n) {
                for (int i = 0; i < n; i++) dst[i] = src[i];
            }""")


class TestDifferentialExecution:
    """Vectorized and scalar versions must agree bit-for-bit."""

    def run_kernel(self, name, n, seed, do_vectorize):
        source = TABLE1_SOURCES[name]
        module, func = (lambda m_f: m_f)(compile_fn(source, do_vectorize))
        module, func = compile_fn(source, do_vectorize)
        rng = random.Random(seed)
        memory = Memory(1 << 20)
        interp = IRInterpreter(module, memory)

        if name == "vecadd":
            a = memory.alloc_array(ty.F32, [rng.uniform(-9, 9)
                                            for _ in range(n)])
            b = memory.alloc_array(ty.F32, [rng.uniform(-9, 9)
                                            for _ in range(n)])
            c = memory.alloc_array(ty.F32, [0.0] * n)
            interp.call("vecadd", [a, b, c, n])
            return memory.read_array(ty.F32, c, n)
        if name == "saxpy":
            x = memory.alloc_array(ty.F32, [rng.uniform(-9, 9)
                                            for _ in range(n)])
            y = memory.alloc_array(ty.F32, [rng.uniform(-9, 9)
                                            for _ in range(n)])
            interp.call("saxpy", [n, 2.5, x, y])
            return memory.read_array(ty.F32, y, n)
        if name == "dscal":
            x = memory.alloc_array(ty.F64, [rng.uniform(-9, 9)
                                            for _ in range(n)])
            interp.call("dscal", [n, 1.5, x])
            return memory.read_array(ty.F64, x, n)
        if name in ("max_u8", "sum_u8"):
            a = memory.alloc_array(ty.U8, [rng.randrange(256)
                                           for _ in range(n)])
            return interp.call(name, [a, n])
        if name == "sum_u16":
            a = memory.alloc_array(ty.U16, [rng.randrange(65536)
                                            for _ in range(n)])
            return interp.call(name, [a, n])
        raise AssertionError(name)

    @pytest.mark.parametrize("name", sorted(TABLE1_SOURCES))
    @pytest.mark.parametrize("n", [0, 1, 3, 16, 17, 64, 100])
    def test_vector_matches_scalar(self, name, n):
        scalar = self.run_kernel(name, n, seed=n * 7 + 1,
                                 do_vectorize=False)
        vector = self.run_kernel(name, n, seed=n * 7 + 1,
                                 do_vectorize=True)
        assert scalar == vector

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(0, 70), seed=st.integers(0, 10**6))
    def test_sum_u8_property(self, n, seed):
        scalar = self.run_kernel("sum_u8", n, seed, do_vectorize=False)
        vector = self.run_kernel("sum_u8", n, seed, do_vectorize=True)
        assert scalar == vector

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(0, 70), seed=st.integers(0, 10**6))
    def test_saxpy_property(self, n, seed):
        scalar = self.run_kernel("saxpy", n, seed, do_vectorize=False)
        vector = self.run_kernel("saxpy", n, seed, do_vectorize=True)
        assert scalar == vector


class TestUnroll:
    def run_sum(self, transform, values):
        module = lower_source(TABLE1_SOURCES["sum_u8"])
        func = next(iter(module))
        PassManager(standard_passes(), verify=True).run(func)
        transform(func)
        verify_function(func)
        memory = Memory()
        addr = memory.alloc_array(ty.U8, values)
        return IRInterpreter(module, memory).call(
            "sum_u8", [addr, len(values)])

    @pytest.mark.parametrize("factor", [2, 4, 8])
    @pytest.mark.parametrize("n", [0, 1, 7, 8, 9, 33])
    def test_unroll_preserves_semantics(self, factor, n):
        rng = random.Random(factor * 100 + n)
        values = [rng.randrange(256) for _ in range(n)]
        plain = self.run_sum(lambda f: None, values)
        unrolled = self.run_sum(lambda f: unroll(f, factor), values)
        assert plain == unrolled

    def test_unroll_replicates_body(self):
        module = lower_source(TABLE1_SOURCES["sum_u8"])
        func = next(iter(module))
        PassManager(standard_passes(), verify=True).run(func)
        before = sum(len(b.instrs) for b in func.blocks)
        result = unroll(func, 4)
        assert result.changed
        after = sum(len(b.instrs) for b in func.blocks)
        assert after > before * 2

    def test_unroll_then_vectorize_composes(self):
        rng = random.Random(5)
        values = [rng.randrange(256) for _ in range(50)]
        combo = self.run_sum(lambda f: (unroll(f, 2), vectorize(f)),
                             values)
        assert combo == sum(values)
