"""Differential tests: lowered IR executed by the interpreter vs Python
oracles.  These pin down MiniC's end-to-end semantics before any
optimization or bytecode stage enters the picture."""

import pytest

from repro.lang import types as ty
from tests.support import run_ir


class TestScalarFunctions:
    def test_arith_mix(self):
        src = "int f(int a, int b) { return (a + b) * (a - b) / 2 % 7; }"
        result, _, _ = run_ir(src, "f", [9, 4])
        assert result == ((9 + 4) * (9 - 4) // 2) % 7

    def test_gcd(self):
        src = """
        int gcd(int a, int b) {
            while (b != 0) { int t = a % b; a = b; b = t; }
            return a;
        }"""
        assert run_ir(src, "gcd", [252, 105])[0] == 21

    def test_collatz_steps(self):
        src = """
        int collatz(int n) {
            int steps = 0;
            while (n != 1) {
                if (n % 2 == 0) n = n / 2;
                else n = 3 * n + 1;
                steps++;
            }
            return steps;
        }"""
        assert run_ir(src, "collatz", [27])[0] == 111

    def test_recursion(self):
        src = "int fact(int n) { return n <= 1 ? 1 : n * fact(n - 1); }"
        assert run_ir(src, "fact", [10])[0] == 3628800

    def test_mutual_calls(self):
        src = """
        int is_odd(int n);
        int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
        int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
        """
        assert run_ir(src, "is_even", [10])[0] == 1
        assert run_ir(src, "is_odd", [7])[0] == 1

    def test_signed_overflow_wraps(self):
        src = "int f(int a) { return a + 1; }"
        assert run_ir(src, "f", [2**31 - 1])[0] == -(2**31)

    def test_unsigned_division(self):
        src = ("unsigned f(unsigned a, unsigned b) { return a / b; }")
        assert run_ir(src, "f", [2**32 - 2, 3])[0] == (2**32 - 2) // 3

    def test_signed_vs_unsigned_compare(self):
        src_signed = "int f(int a) { return a < 0; }"
        src_unsigned = "int f(unsigned a) { return a < 0u; }"
        assert run_ir(src_signed, "f", [-1])[0] == 1
        assert run_ir(src_unsigned, "f", [-1])[0] == 0

    def test_short_circuit_skips_side_effect(self):
        src = """
        int f(int x) {
            int calls = 0;
            int r = (x > 0) && (calls = 1);
            return calls * 10 + r;
        }"""
        assert run_ir(src, "f", [0])[0] == 0      # rhs never evaluated
        assert run_ir(src, "f", [5])[0] == 11

    def test_logical_or_result_is_01(self):
        src = "int f(int x) { return x || 0; }"
        assert run_ir(src, "f", [42])[0] == 1

    def test_conditional_expression(self):
        src = "int f(int a, int b) { return a > b ? a - b : b - a; }"
        assert run_ir(src, "f", [3, 10])[0] == 7

    def test_do_while_executes_at_least_once(self):
        src = """
        int f(int n) {
            int count = 0;
            do { count++; } while (count < n);
            return count;
        }"""
        assert run_ir(src, "f", [0])[0] == 1

    def test_break_and_continue(self):
        src = """
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++) {
                if (i % 2 == 0) continue;
                if (i > 10) break;
                s += i;
            }
            return s;
        }"""
        assert run_ir(src, "f", [100])[0] == 1 + 3 + 5 + 7 + 9

    def test_nested_loop_product(self):
        src = """
        int f(int n) {
            int s = 0;
            for (int i = 0; i < n; i++)
                for (int j = 0; j < n; j++)
                    s += i * j;
            return s;
        }"""
        n = 7
        assert run_ir(src, "f", [n])[0] == \
            sum(i * j for i in range(n) for j in range(n))

    def test_compound_assignments(self):
        src = """
        int f(int x) {
            x += 3; x *= 2; x -= 1; x /= 3; x %= 10;
            x <<= 2; x >>= 1; x |= 8; x &= 14; x ^= 5;
            return x;
        }"""
        x = 7
        x += 3; x *= 2; x -= 1; x //= 3; x %= 10
        x <<= 2; x >>= 1; x |= 8; x &= 14; x ^= 5
        assert run_ir(src, "f", [7])[0] == x

    def test_incdec_value_semantics(self):
        src = """
        int f(int x) {
            int a = x++;
            int b = ++x;
            int c = x--;
            int d = --x;
            return a * 1000000 + b * 10000 + c * 100 + d;
        }"""
        assert run_ir(src, "f", [5])[0] == \
            5 * 1000000 + 7 * 10000 + 7 * 100 + 5


class TestFloats:
    def test_float_arith(self):
        src = "double f(double a, double b) { return a * b + a / b; }"
        assert run_ir(src, "f", [3.0, 4.0])[0] == pytest.approx(12.75)

    def test_f32_precision_differs_from_f64(self):
        src32 = "float f(float a, float b) { return a + b; }"
        src64 = "double f(double a, double b) { return a + b; }"
        r32 = run_ir(src32, "f", [0.1, 0.2])[0]
        r64 = run_ir(src64, "f", [0.1, 0.2])[0]
        assert r32 != r64

    def test_int_float_conversions(self):
        src = "int f(double x) { return (int)(x * 2.0); }"
        assert run_ir(src, "f", [2.7])[0] == 5

    def test_float_condition(self):
        src = "int f(double x) { if (x) return 1; return 0; }"
        assert run_ir(src, "f", [0.0])[0] == 0
        assert run_ir(src, "f", [-0.5])[0] == 1

    def test_float_incdec(self):
        src = "double f(double x) { x++; ++x; return x; }"
        assert run_ir(src, "f", [1.5])[0] == 3.5


class TestMemoryAndPointers:
    def test_array_sum(self):
        src = """
        int sum(int *a, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += a[i];
            return s;
        }"""
        values = [3, -1, 4, 1, -5, 9, 2, 6]
        result, _, _ = run_ir(src, "sum", ["a", len(values)],
                              arrays={"a": (ty.I32, values)})
        assert result == sum(values)

    def test_writes_visible_in_memory(self):
        src = """
        void scale(float *x, int n, float k) {
            for (int i = 0; i < n; i++) x[i] = x[i] * k;
        }"""
        values = [1.0, 2.0, 3.0]
        _, mem, addrs = run_ir(src, "scale", ["x", 3, 2.0],
                               arrays={"x": (ty.F32, values)})
        assert mem.read_array(ty.F32, addrs["x"], 3) == [2.0, 4.0, 6.0]

    def test_pointer_walk(self):
        src = """
        int last(int *p, int n) {
            int *end = p + n - 1;
            while (p < end) p++;
            return *p;
        }"""
        result, _, _ = run_ir(src, "last", ["p", 5],
                              arrays={"p": (ty.I32, [10, 20, 30, 40, 50])})
        assert result == 50

    def test_pointer_difference(self):
        src = """
        long dist(int *a, int n) {
            int *b = a + n;
            return b - a;
        }"""
        result, _, _ = run_ir(src, "dist", ["a", 7],
                              arrays={"a": (ty.I32, [0] * 8)})
        assert result == 7

    def test_local_array_and_addressof(self):
        src = """
        int f(void) {
            int buf[4];
            for (int i = 0; i < 4; i++) buf[i] = i + 1;
            int *p = &buf[2];
            *p = 99;
            return buf[0] + buf[1] + buf[2] + buf[3];
        }"""
        assert run_ir(src, "f", [])[0] == 1 + 2 + 99 + 4

    def test_address_taken_scalar(self):
        src = """
        void set(int *p, int v) { *p = v; }
        int f(void) {
            int x = 1;
            set(&x, 42);
            return x;
        }"""
        assert run_ir(src, "f", [])[0] == 42

    def test_subword_store_load(self):
        src = """
        int f(unsigned char *b) {
            b[0] = 300;           /* wraps to 44 */
            short s = -2;
            b[1] = s;             /* wraps to 254 */
            return b[0] + b[1];
        }"""
        result, _, _ = run_ir(src, "f", ["b"],
                              arrays={"b": (ty.U8, [0, 0])})
        assert result == 44 + 254

    def test_two_dimensional_local_array(self):
        src = """
        int f(void) {
            int m[3][4];
            for (int i = 0; i < 3; i++)
                for (int j = 0; j < 4; j++)
                    m[i][j] = i * 10 + j;
            return m[2][3] + m[0][1] + m[1][0];
        }"""
        assert run_ir(src, "f", [])[0] == 23 + 1 + 10

    def test_out_of_bounds_traps(self):
        from repro.semantics import TrapError
        src = "int f(int *p) { return p[1000000]; }"
        with pytest.raises(TrapError):
            run_ir(src, "f", ["p"], arrays={"p": (ty.I32, [1])})

    def test_sizeof_in_pointer_code(self):
        src = """
        long f(void) { return sizeof(double) + sizeof(int*); }
        """
        assert run_ir(src, "f", [])[0] == 16


class TestKernelOracles:
    """The Table 1 kernels against numpy-style oracles."""

    def test_vecadd_fp(self):
        src = """
        void vecadd(float *a, float *b, float *c, int n) {
            for (int i = 0; i < n; i++) c[i] = a[i] + b[i];
        }"""
        a = [float(i) for i in range(32)]
        b = [float(2 * i) for i in range(32)]
        _, mem, addrs = run_ir(src, "vecadd", ["a", "b", "c", 32],
                               arrays={"a": (ty.F32, a), "b": (ty.F32, b),
                                       "c": (ty.F32, [0.0] * 32)})
        assert mem.read_array(ty.F32, addrs["c"], 32) == \
            [x + y for x, y in zip(a, b)]

    def test_max_u8(self):
        src = """
        int max_u8(unsigned char *a, int n) {
            int m = 0;
            for (int i = 0; i < n; i++) if (a[i] > m) m = a[i];
            return m;
        }"""
        values = [17, 250, 3, 99, 250, 1, 128]
        result, _, _ = run_ir(src, "max_u8", ["a", len(values)],
                              arrays={"a": (ty.U8, values)})
        assert result == 250

    def test_sum_u16_wraps_in_i32(self):
        src = """
        int sum_u16(unsigned short *a, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += a[i];
            return s;
        }"""
        values = [65535, 65535, 12345]
        result, _, _ = run_ir(src, "sum_u16", ["a", 3],
                              arrays={"a": (ty.U16, values)})
        assert result == sum(values)

    def test_dscal(self):
        src = """
        void dscal(int n, double a, double *x) {
            for (int i = 0; i < n; i++) x[i] = a * x[i];
        }"""
        values = [1.5, -2.0, 0.25]
        _, mem, addrs = run_ir(src, "dscal", [3, 4.0, "x"],
                               arrays={"x": (ty.F64, values)})
        assert mem.read_array(ty.F64, addrs["x"], 3) == \
            [4.0 * v for v in values]
