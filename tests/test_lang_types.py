"""Type system unit and property tests."""

from hypothesis import given
from hypothesis import strategies as st

from repro.lang import types as ty

ALL_INTS = list(ty.INT_TYPES)
ALL_ARITH = ALL_INTS + list(ty.FLOAT_TYPES)


class TestSizeofAndLayout:
    def test_scalar_sizes(self):
        assert ty.sizeof(ty.I8) == 1
        assert ty.sizeof(ty.U16) == 2
        assert ty.sizeof(ty.I32) == 4
        assert ty.sizeof(ty.U64) == 8
        assert ty.sizeof(ty.F32) == 4
        assert ty.sizeof(ty.F64) == 8

    def test_pointer_size(self):
        assert ty.sizeof(ty.PointerType(ty.I8)) == 8

    def test_array_size(self):
        assert ty.sizeof(ty.ArrayType(ty.I32, 10)) == 40
        assert ty.sizeof(ty.ArrayType(ty.ArrayType(ty.F64, 2), 3)) == 48

    def test_array_align_is_elem_align(self):
        assert ty.alignof(ty.ArrayType(ty.I16, 9)) == 2


class TestPromotionRules:
    def test_narrow_ints_promote_to_i32(self):
        for t in (ty.I8, ty.U8, ty.I16, ty.U16):
            assert ty.promote(t) == ty.I32

    def test_wide_types_unchanged(self):
        for t in (ty.I32, ty.U32, ty.I64, ty.U64, ty.F32, ty.F64):
            assert ty.promote(t) == t

    def test_common_type_float_dominates(self):
        assert ty.common_type(ty.I64, ty.F32) == ty.F32
        assert ty.common_type(ty.F32, ty.F64) == ty.F64

    def test_common_type_width_dominates(self):
        assert ty.common_type(ty.I32, ty.I64) == ty.I64

    def test_common_type_unsigned_wins_ties(self):
        assert ty.common_type(ty.I32, ty.U32) == ty.U32
        assert ty.common_type(ty.I64, ty.U64) == ty.U64

    def test_common_type_of_narrow_ints_is_i32(self):
        assert ty.common_type(ty.U8, ty.I16) == ty.I32

    @given(st.sampled_from(ALL_ARITH), st.sampled_from(ALL_ARITH))
    def test_common_type_commutative(self, a, b):
        assert ty.common_type(a, b) == ty.common_type(b, a)

    @given(st.sampled_from(ALL_ARITH))
    def test_common_type_idempotent_after_promotion(self, a):
        assert ty.common_type(a, a) == ty.promote(a)


class TestWrapping:
    def test_wrap_signed_overflow(self):
        assert ty.wrap_int(128, ty.I8) == -128
        assert ty.wrap_int(2**31, ty.I32) == -(2**31)

    def test_wrap_unsigned_overflow(self):
        assert ty.wrap_int(256, ty.U8) == 0
        assert ty.wrap_int(-1, ty.U8) == 255

    def test_int_bounds(self):
        assert ty.int_min(ty.I8) == -128
        assert ty.int_max(ty.I8) == 127
        assert ty.int_min(ty.U16) == 0
        assert ty.int_max(ty.U16) == 65535

    @given(st.sampled_from(ALL_INTS), st.integers(-2**70, 2**70))
    def test_wrap_is_idempotent(self, int_ty, value):
        once = ty.wrap_int(value, int_ty)
        assert ty.wrap_int(once, int_ty) == once

    @given(st.sampled_from(ALL_INTS), st.integers(-2**70, 2**70))
    def test_wrap_stays_in_range(self, int_ty, value):
        wrapped = ty.wrap_int(value, int_ty)
        assert ty.int_min(int_ty) <= wrapped <= ty.int_max(int_ty)

    @given(st.sampled_from(ALL_INTS), st.integers(-2**70, 2**70))
    def test_wrap_preserves_residue_mod_2n(self, int_ty, value):
        wrapped = ty.wrap_int(value, int_ty)
        assert (wrapped - value) % (1 << int_ty.bits) == 0


class TestDecay:
    def test_array_decays_to_pointer(self):
        arr = ty.ArrayType(ty.F32, 8)
        assert ty.decay(arr) == ty.PointerType(ty.F32)

    def test_scalar_decay_is_identity(self):
        assert ty.decay(ty.I32) == ty.I32

    def test_can_convert_between_arithmetic(self):
        assert ty.can_convert(ty.I8, ty.F64)
        assert ty.can_convert(ty.F32, ty.U16)

    def test_cannot_convert_pointer_pointee_mismatch(self):
        assert not ty.can_convert(ty.PointerType(ty.I32),
                                  ty.PointerType(ty.F32))

    def test_str_forms(self):
        assert str(ty.PointerType(ty.U8)) == "u8*"
        assert str(ty.ArrayType(ty.I32, 4)) == "i32[4]"
        assert str(ty.F64) == "f64"
