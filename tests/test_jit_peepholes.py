"""Unit tests for the JIT's cheap transformation passes: stack
scheduling, cast-chain folding, addressing folds, scalarization."""

import pytest

from repro.bytecode import BCInstr, emit_module, verify_module
from repro.bytecode.module import BytecodeFunction, BytecodeModule
from repro.bytecode.peep import compress_stack_traffic
from repro.core import deploy, offline_compile
from repro.ir import Load, Store, VLoad, verify_function
from repro.jit.addrfold import (
    LoadIndexed, StoreIndexed, fold_addressing,
)
from repro.jit.frontend import decode_function
from repro.jit.peephole import fold_cast_chains, quick_cleanup
from repro.jit.scalarize import promotes_lanes, scalarize_vectors
from repro.ir.values import vec_of
from repro.lang import types as ty
from repro.opt import PassManager, standard_passes
from repro.semantics import Memory
from repro.targets import HOST, PPC, SPARC, X86, Simulator
from repro.vm import VM
from tests.support import lower_checked


def lir_of(source, name, optimize=True):
    module = lower_checked(source)
    if optimize:
        for func in module:
            PassManager(standard_passes(), verify=True).run(func)
    bc, _ = emit_module(module)
    lir, _ = decode_function(bc[name], bc.functions)
    return lir


class TestStackScheduling:
    def test_adjacent_pair_removed(self):
        func = BytecodeFunction(
            "f", [], "i32", ["i32"], [],
            [BCInstr("const", "i32", 7),
             BCInstr("stloc", None, 0),
             BCInstr("ldloc", None, 0),
             BCInstr("ret")])
        compress_stack_traffic(func)
        ops = [i.op for i in func.code]
        assert ops == ["const", "ret"]

    def test_multi_use_local_kept(self):
        func = BytecodeFunction(
            "f", [], "i32", ["i32"], [],
            [BCInstr("const", "i32", 7),
             BCInstr("stloc", None, 0),
             BCInstr("ldloc", None, 0),
             BCInstr("ldloc", None, 0),
             BCInstr("add", "i32"),
             BCInstr("ret")])
        compress_stack_traffic(func)
        assert [i.op for i in func.code][0:2] == ["const", "stloc"]

    def test_branch_targets_remapped(self):
        module = lower_checked("""
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += i * i;
                return s;
            }""")
        bc, _ = emit_module(module)            # compression runs inside
        verify_module(bc)
        for instr in bc["f"].code:
            if instr.op in ("br", "brif"):
                assert 0 <= instr.arg < len(bc["f"].code)

    def test_compressed_code_still_correct(self):
        module = lower_checked(
            "int f(int a, int b) { return (a + b) * (a - b); }")
        bc, _ = emit_module(module)
        verify_module(bc)
        assert VM(bc).call("f", [9, 4]) == 13 * 5

    def test_compression_reduces_instruction_count(self):
        # With and without: emit, then re-expand manually is hard, so
        # just check the invariant that no adjacent single-use pair
        # survives.
        module = lower_checked(
            "int f(int a) { return ((a * 3) + 1) * ((a * 3) + 1); }")
        bc, _ = emit_module(module)
        code = bc["f"].code
        loads = {}
        stores = {}
        for instr in code:
            if instr.op == "ldloc":
                loads[instr.arg] = loads.get(instr.arg, 0) + 1
            if instr.op == "stloc":
                stores[instr.arg] = stores.get(instr.arg, 0) + 1
        targets = {i.arg for i in code if i.op in ("br", "brif")}
        for i in range(len(code) - 1):
            a, b = code[i], code[i + 1]
            assert not (a.op == "stloc" and b.op == "ldloc" and
                        a.arg == b.arg and stores[a.arg] == 1 and
                        loads.get(a.arg) == 1 and i + 1 not in targets)


class TestCastChainFolding:
    def test_widening_chain_folds(self):
        lir = lir_of("long f(int *p, int i) { return p[i]; }", "f")
        quick_cleanup(lir)
        verify_function(lir)
        from repro.ir import Cast
        casts = [i for i in lir.instructions() if isinstance(i, Cast)]
        # i32 -> i64 -> u64 collapses into one cast
        chain = [c for c in casts
                 if (c.from_ty, c.to_ty) == (ty.I32, ty.U64)]
        assert chain

    def test_unsafe_chain_not_folded(self):
        # i32 -> u32 -> i64 must NOT become i32 -> i64 (sign changes).
        source = """
        long f(int x) {
            unsigned u = x;
            return (long)u;
        }"""
        lir = lir_of(source, "f")
        quick_cleanup(lir)
        verify_function(lir)
        from repro.ir.interp import IRInterpreter
        from repro.ir.function import Module
        module = Module("m")
        module.add(lir)
        assert IRInterpreter(module).call("f", [-1]) == 2**32 - 1

    def test_semantics_preserved_for_all_engines(self):
        source = "long f(unsigned char c) { return (long)(int)c + 1; }"
        artifact = offline_compile(source)
        compiled = deploy(artifact, X86, "split")
        assert Simulator(compiled).run("f", [200]).value == 201


class TestAddressingFold:
    def test_fold_applied(self):
        lir = lir_of("int f(int *p, int i) { return p[i]; }", "f")
        quick_cleanup(lir)
        fold_addressing(lir)
        kinds = [type(i).__name__ for i in lir.instructions()]
        assert "LoadIndexed" in kinds

    def test_store_fold_applied(self):
        lir = lir_of("void f(int *p, int i) { p[i] = 7; }", "f")
        quick_cleanup(lir)
        fold_addressing(lir)
        kinds = [type(i).__name__ for i in lir.instructions()]
        assert "StoreIndexed" in kinds

    def test_multi_use_address_not_folded(self):
        # the address feeds a load AND a store: the add must survive
        lir = lir_of("void f(int *p, int i) { p[i] = p[i] + 1; }", "f")
        quick_cleanup(lir)
        fold_addressing(lir)
        from repro.ir import BinOp
        adds = [i for i in lir.instructions()
                if isinstance(i, BinOp) and i.op == "add" and
                i.ty == ty.U64]
        assert adds

    def test_folded_code_executes_correctly(self):
        source = "int f(int *p, int i) { return p[i] * 10; }"
        artifact = offline_compile(source)
        for target in (X86, SPARC):
            compiled = deploy(artifact, target, "split")
            memory = Memory()
            addr = memory.alloc_array(ty.I32, [5, 6, 7, 8])
            assert Simulator(compiled, memory).run(
                "f", [addr, 2]).value == 70


class TestScalarization:
    def test_promotion_decision_per_target(self):
        assert promotes_lanes(SPARC, vec_of(ty.F32))       # 4 lanes, FP
        assert promotes_lanes(PPC, vec_of(ty.F64))         # 2 lanes
        assert not promotes_lanes(SPARC, vec_of(ty.U8))    # 16 lanes
        assert not promotes_lanes(PPC, vec_of(ty.U8))      # > max lanes
        assert not promotes_lanes(HOST, vec_of(ty.I32))    # tiny file

    def test_memory_mode_creates_frame_temps(self):
        kernel_source = """
            int sum_u8(unsigned char *a, int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += a[i];
                return s;
            }"""
        module = lower_checked(kernel_source)
        func = module["sum_u8"]
        PassManager(standard_passes(), verify=True).run(func)
        from repro.opt.vectorize import vectorize
        vectorize(func)
        bc, _ = emit_module(module)
        lir, _ = decode_function(bc["sum_u8"], bc.functions)
        slots_before = len(lir.frame_slots)
        scalarize_vectors(lir, SPARC)
        verify_function(lir)
        assert len(lir.frame_slots) > slots_before

    def test_register_mode_no_frame_temps(self):
        source = """
            void scale(float *x, int n) {
                for (int i = 0; i < n; i++) x[i] = 2.0f * x[i];
            }"""
        module = lower_checked(source)
        func = module["scale"]
        PassManager(standard_passes(), verify=True).run(func)
        from repro.opt.vectorize import vectorize
        vectorize(func)
        bc, _ = emit_module(module)
        lir, _ = decode_function(bc["scale"], bc.functions)
        slots_before = len(lir.frame_slots)
        scalarize_vectors(lir, PPC)        # f32: promoted
        verify_function(lir)
        assert len(lir.frame_slots) == slots_before

    def test_no_vector_ops_survive(self):
        source = """
            int sum_u16(unsigned short *a, int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += a[i];
                return s;
            }"""
        artifact = offline_compile(source)
        for target in (SPARC, PPC, HOST):
            compiled = deploy(artifact, target, "split")
            for func in compiled.functions.values():
                for instr in func.code:
                    assert not instr.op.startswith("v"), \
                        (target.name, instr)
