"""The flow registry: custom flows end-to-end, instrumentation, errors.

Covers the acceptance criteria of the flow-registry refactor: a flow
added with one ``register_flow(...)`` call — no edits to ``core/``,
``jit/`` or ``service/`` — immediately appears in ``compare_flows``,
the iterative search space and the service cache stats; per-pass
instrumentation sums to the artifact's ``offline_work``; flows pickle
(groundwork for a process-pool deployment backend); and every entry
point raises the one ``UnknownFlowError`` listing what is registered.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import compare_flows, deploy, offline_compile
from repro.core.online import select_bytecode
from repro.flows import (
    Flow, PipelineSpec, UnknownFlowError, as_flow, flow_names,
    get_flow, register_flow, registered_flows, unregister_flow,
)
from repro.iterative.search import label_of, search_space
from repro.jit import JITOptions
from repro.service import (
    CompilationService, CompileRequest, artifact_key,
    deserialize_artifact, serialize_artifact,
)
from repro.service.cache import SCHEMA_VERSION
from repro.targets import X86
from repro.targets.catalog import TARGETS
from repro.workloads import TABLE1

SUM_U8 = TABLE1["sum_u8"].source

#: a user-defined flow: lean offline pipeline, unrolled, vector flavour
CUSTOM_PIPELINE = PipelineSpec(
    passes=("constfold", "copyprop", "cse", "dce", "simplify-cfg"),
    unroll=2, vectorize=True)


@pytest.fixture
def custom_flow():
    flow = register_flow(Flow(
        "test-custom", pipeline=CUSTOM_PIPELINE,
        jit=JITOptions(use_annotations=True),
        bytecode="vector",
        description="registered by the test suite"))
    yield flow
    unregister_flow("test-custom")


@pytest.fixture
def service():
    svc = CompilationService(cache_capacity=8)
    yield svc
    svc.shutdown()


# ---------------------------------------------------------------------------
# registry mechanics
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_paper_flows_registered(self):
        names = flow_names()
        assert names[:3] == ("offline-only", "online-only", "split")
        assert "split-O3" in names and "adaptive" in names

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_flow(Flow("split"))

    def test_replace_allows_redefinition(self, custom_flow):
        redefined = register_flow(
            Flow("test-custom", bytecode="scalar"), replace=True)
        assert get_flow("test-custom") is redefined
        assert redefined.cache_key() != custom_flow.cache_key()

    def test_bad_flavour_rejected(self):
        with pytest.raises(ValueError, match="flavour"):
            register_flow(Flow("bad", bytecode="quantum"))

    def test_bad_pass_name_rejected(self):
        with pytest.raises(KeyError, match="unknown pass"):
            register_flow(Flow(
                "bad", pipeline=PipelineSpec(passes=("frobnicate",))))

    def test_as_flow_accepts_objects_and_names(self, custom_flow):
        assert as_flow(custom_flow) is custom_flow
        assert as_flow("test-custom") is custom_flow


# ---------------------------------------------------------------------------
# one error type from every entry point
# ---------------------------------------------------------------------------

class TestUnknownFlow:
    def test_jit_options_entry_point(self):
        with pytest.raises(UnknownFlowError) as err:
            JITOptions.flow("warp-speed")
        assert "registered flows" in str(err.value)
        assert "split" in str(err.value)

    def test_select_bytecode_entry_point(self):
        artifact = offline_compile(SUM_U8)
        with pytest.raises(UnknownFlowError):
            select_bytecode(artifact, "warp-speed")

    def test_deploy_entry_point(self):
        artifact = offline_compile(SUM_U8)
        with pytest.raises(UnknownFlowError):
            deploy(artifact, X86, "warp-speed")

    def test_service_entry_points(self, service):
        artifact = service.artifact(SUM_U8)
        with pytest.raises(UnknownFlowError):
            service.deploy_many(artifact, [X86], "warp-speed")
        with pytest.raises(UnknownFlowError):
            service.submit(CompileRequest(
                source=SUM_U8, targets=[X86], flow="warp-speed"))

    def test_is_a_value_error(self):
        # legacy callers catch ValueError; the unified type must fit
        assert issubclass(UnknownFlowError, ValueError)


# ---------------------------------------------------------------------------
# a custom flow, end to end
# ---------------------------------------------------------------------------

class TestCustomFlowEndToEnd:
    def test_appears_in_compare_flows(self, custom_flow):
        kernel = TABLE1["sum_u8"]
        artifact = offline_compile(kernel.source)

        def make_args(memory):
            return kernel.prepare(memory, 48, seed=3).args

        reports = compare_flows(artifact, X86, kernel.entry, make_args)
        by_flow = {r.flow: r for r in reports}
        assert "test-custom" in by_flow
        custom = by_flow["test-custom"]
        # correct result, same as every other flow
        assert len({repr(r.value) for r in reports}) == 1
        # the flow's own pipeline ran (and was charged offline)
        assert custom.offline_work > 0
        assert "unroll" in custom.offline_pass_work
        assert "licm" not in custom.offline_pass_work

    def test_appears_in_search_space(self, custom_flow):
        labels = {label_of(c) for c in search_space()}
        assert "flow:test-custom" in labels

    def test_builtin_flows_do_not_duplicate_cube_points(self):
        # every built-in flow compiles identically to a knob-cube
        # point, so the space must stay exactly the 128-point cube
        from repro.iterative.search import all_configurations
        assert len(search_space()) == len(all_configurations())

    def test_service_caches_per_flow(self, custom_flow, service):
        request_split = CompileRequest(source=SUM_U8, name="k",
                                       targets=[X86], flow="split")
        request_custom = CompileRequest(source=SUM_U8, name="k",
                                        targets=[X86],
                                        flow="test-custom")
        split_result = service.submit(request_split)
        custom_result = service.submit(request_custom)
        # distinct pipeline => distinct artifact cache entries
        assert split_result.artifact_key != custom_result.artifact_key
        assert not custom_result.artifact_cache_hit
        # repeated custom request is fully served from the caches
        again = service.submit(request_custom)
        assert again.artifact_cache_hit and again.fully_cached
        # and the flow shows up in the service stats by name
        by_flow = service.stats().deploy_by_flow
        assert by_flow["test-custom"]["compiles"] == 1
        assert by_flow["test-custom"]["memo_hits"] == 1

    def test_dict_pipeline_keeps_default_passes(self):
        # a partial dict must default like PipelineSpec, not to ()
        artifact = offline_compile(SUM_U8, pipeline={"unroll": 2})
        assert artifact.pipeline.passes == PipelineSpec().passes
        assert artifact.pipeline.unroll == 2

    def test_dict_pipeline_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown pipeline"):
            offline_compile(SUM_U8, pipeline={"vectorise": False})

    def test_per_flow_recompile_keeps_hotness(self):
        kernel = TABLE1["sum_u8"]
        artifact = offline_compile(kernel.source,
                                   hotness={kernel.entry: 7})

        def make_args(memory):
            return kernel.prepare(memory, 48, seed=3).args

        reports = compare_flows(artifact, X86, kernel.entry, make_args,
                                flows=("split-O3",))
        assert reports[0].flow == "split-O3"
        # the recompiled split-O3 artifact kept the profile
        from repro.core.budget import artifact_for_flow
        recompiled = artifact_for_flow(artifact, get_flow("split-O3"))
        assert recompiled is not artifact
        assert recompiled.hotness == {kernel.entry: 7}

    def test_artifact_key_covers_pipeline(self):
        assert artifact_key(SUM_U8) != artifact_key(
            SUM_U8, options={"pipeline": CUSTOM_PIPELINE})
        # dict and spec forms of the same pipeline hash identically
        assert artifact_key(
            SUM_U8, options={"pipeline": CUSTOM_PIPELINE}) == \
            artifact_key(
                SUM_U8, options={"pipeline": CUSTOM_PIPELINE.to_dict()})


# ---------------------------------------------------------------------------
# per-pass instrumentation
# ---------------------------------------------------------------------------

class TestPassInstrumentation:
    def test_stats_sum_to_offline_work(self):
        artifact = offline_compile(SUM_U8)
        stats = artifact.pass_stats
        assert stats.total_work == artifact.offline_work
        assert sum(stats.work_by_pass.values()) == artifact.offline_work
        # both flavours and the vectorize stage are accounted
        assert "vectorize" in stats.work_by_pass
        assert any(name.startswith("scalar:")
                   for name in stats.work_by_pass)

    def test_records_carry_ir_deltas(self):
        artifact = offline_compile(SUM_U8)
        records = artifact.pass_stats.records
        assert records, "instrumentation must record invocations"
        # dce/simplify-cfg shrink the IR somewhere in the pipeline
        assert any(r.ir_delta < 0 for r in records)
        assert any(r.changed for r in records)
        report = artifact.pass_report()
        assert "vectorize" in report

    def test_stats_survive_persistence(self):
        entry = TABLE1["sum_u8"].entry
        artifact = offline_compile(SUM_U8, "k", hotness={entry: 5})
        revived = deserialize_artifact(serialize_artifact(artifact))
        assert revived.offline_work == artifact.offline_work
        assert revived.pass_stats.total_work == revived.offline_work
        assert revived.pass_stats.summary_dict() == \
            artifact.pass_stats.summary_dict()
        assert revived.source == artifact.source
        assert revived.pipeline == artifact.pipeline
        assert revived.hotness == artifact.hotness

    def test_merge_preserves_restored_summaries(self):
        from repro.opt import PassStats
        artifact = offline_compile(SUM_U8, "k")
        revived = deserialize_artifact(serialize_artifact(artifact))
        merged = PassStats().merge(revived.pass_stats)
        assert merged.summary_dict() == \
            artifact.pass_stats.summary_dict()
        # summaries() must not mutate the restored aggregates
        assert merged.summary_dict() == merged.summary_dict()

    def test_flow_reports_pass_work(self, service):
        kernel = TABLE1["sum_u8"]
        artifact = service.artifact(kernel.source)

        def make_args(memory):
            return kernel.prepare(memory, 48, seed=3).args

        reports = compare_flows(artifact, X86, kernel.entry, make_args,
                                service=service)
        for report in reports:
            if report.offline_work:
                assert sum(report.offline_pass_work.values()) == \
                    report.offline_work
        by_flow = {r.flow: r for r in reports}
        # online-only re-derives: its online pass work is non-empty
        assert sum(by_flow["online-only"].online_pass_work.values()) == \
            by_flow["online-only"].online_analysis_work
        assert by_flow["split"].online_pass_work == {}

    def test_deploy_result_reports_pass_work(self, service):
        result = service.submit(CompileRequest(
            source=SUM_U8, name="k", targets=[X86], flow="split"))
        assert result.flow == "split"
        assert sum(result.offline_pass_work.values()) > 0


# ---------------------------------------------------------------------------
# the adaptive flow's hotness gate
# ---------------------------------------------------------------------------

class TestAdaptiveFlow:
    def deploy_with_hotness(self, weight):
        entry = TABLE1["sum_u8"].entry
        artifact = offline_compile(SUM_U8, hotness={entry: weight})
        return deploy(artifact, X86, "adaptive")

    def test_cold_function_skips_online_analysis(self):
        compiled = self.deploy_with_hotness(0)
        assert compiled.total_jit_analysis_work == 0

    def test_hot_function_gets_online_vectorization(self):
        compiled = self.deploy_with_hotness(10)
        assert compiled.total_jit_analysis_work > 0
        assert "vectorize" in compiled.total_jit_pass_work

    def test_unprofiled_counts_as_hot(self):
        artifact = offline_compile(SUM_U8)
        compiled = deploy(artifact, X86, "adaptive")
        assert compiled.total_jit_analysis_work > 0


# ---------------------------------------------------------------------------
# pickling (process-pool groundwork)
# ---------------------------------------------------------------------------

class TestPickling:
    def test_every_registered_flow_pickles(self):
        for flow in registered_flows():
            revived = pickle.loads(pickle.dumps(flow))
            assert revived == flow
            assert revived.cache_key() == flow.cache_key()

    def test_custom_flow_pickles(self, custom_flow):
        revived = pickle.loads(pickle.dumps(custom_flow))
        assert revived == custom_flow
        assert revived.pipeline.passes == CUSTOM_PIPELINE.passes


# ---------------------------------------------------------------------------
# schema versioning of persisted artifacts
# ---------------------------------------------------------------------------

class TestSchemaVersion:
    def test_key_embeds_schema_version(self):
        # indirect but robust: the key payload hashes SCHEMA_VERSION,
        # so the constant participates in every address
        assert SCHEMA_VERSION.startswith("pva")

    def test_stale_schema_rejected_on_decode(self):
        artifact = offline_compile(SUM_U8, "k")
        raw = serialize_artifact(artifact)
        stale = raw.replace(SCHEMA_VERSION.encode("utf-8"),
                            b"x" * len(SCHEMA_VERSION), 1)
        assert stale != raw
        with pytest.raises(ValueError, match="schema"):
            deserialize_artifact(stale)

    def test_stale_disk_entry_self_invalidates(self, tmp_path):
        svc = CompilationService(cache_capacity=2, persist_dir=tmp_path)
        try:
            svc.compile(SUM_U8, "k")
            entry = next(tmp_path.rglob("*.pvia"))
            raw = entry.read_bytes()
            entry.write_bytes(raw.replace(
                SCHEMA_VERSION.encode("utf-8"),
                b"x" * len(SCHEMA_VERSION), 1))
            svc.cache.clear()
            outcome = svc.compile(SUM_U8, "k")    # must recompile
            assert not outcome.cache_hit
            assert svc.cache.stats.corrupt_entries == 1
        finally:
            svc.shutdown()
