"""IR construction, CFG analyses, liveness and verifier tests."""

import pytest

from repro.ir import (
    Branch, Const, IRBuilder, Jump, Move, Ret,
    Function, IRVerifyError, verify_function,
)
from repro.ir.cfg import (
    dominators, innermost_loops, natural_loops, predecessors,
    reverse_postorder, remove_unreachable,
)
from repro.ir.liveness import analyze, live_ranges, max_live
from repro.lang import types as ty
from tests.support import lower_checked


def build_diamond():
    """if/else diamond: entry -> (a | b) -> join."""
    func = Function("diamond", ty.I32)
    cond = func.new_param(ty.I32, "c")
    entry = func.new_block("entry")
    a = func.new_block("a")
    b = func.new_block("b")
    join = func.new_block("join")
    builder = IRBuilder(func)
    result = func.new_reg(ty.I32, "r")

    builder.set_block(entry)
    builder.branch(cond, a, b)
    builder.set_block(a)
    builder.emit(Move(result, Const(1, ty.I32)))
    builder.jump(join)
    builder.set_block(b)
    builder.emit(Move(result, Const(2, ty.I32)))
    builder.jump(join)
    builder.set_block(join)
    builder.ret(result)
    return func


def build_loop():
    """Simple counted loop CFG."""
    func = Function("loop", ty.I32)
    n = func.new_param(ty.I32, "n")
    entry = func.new_block("entry")
    head = func.new_block("head")
    body = func.new_block("body")
    exit_bb = func.new_block("exit")
    builder = IRBuilder(func)
    i = func.new_reg(ty.I32, "i")

    builder.set_block(entry)
    builder.emit(Move(i, Const(0, ty.I32)))
    builder.jump(head)
    builder.set_block(head)
    cmp = builder.cmp("lt", i, n, ty.I32)
    builder.branch(cmp, body, exit_bb)
    builder.set_block(body)
    next_i = builder.binop("add", i, Const(1, ty.I32), ty.I32)
    builder.emit(Move(i, next_i))
    builder.jump(head)
    builder.set_block(exit_bb)
    builder.ret(i)
    return func


class TestCFG:
    def test_predecessors_diamond(self):
        func = build_diamond()
        preds = predecessors(func)
        assert sorted(preds["join0"[:-1] + "3"]) == ["a1", "b2"] or True
        # Look up by actual labels to stay robust to numbering:
        join = func.blocks[3].label
        assert sorted(preds[join]) == sorted(
            [func.blocks[1].label, func.blocks[2].label])

    def test_reverse_postorder_starts_at_entry(self):
        func = build_loop()
        rpo = reverse_postorder(func)
        assert rpo[0] == func.entry.label
        assert len(rpo) == 4

    def test_dominators_loop(self):
        func = build_loop()
        dom = dominators(func)
        entry, head, body, exit_bb = [b.label for b in func.blocks]
        assert entry in dom[body]
        assert head in dom[body]
        assert head in dom[exit_bb]
        assert body not in dom[exit_bb]

    def test_natural_loop_detection(self):
        func = build_loop()
        loops = natural_loops(func)
        assert len(loops) == 1
        loop = loops[0]
        head, body = func.blocks[1].label, func.blocks[2].label
        assert loop.header == head
        assert loop.body == {head, body}
        assert loop.preheader == func.entry.label

    def test_diamond_has_no_loops(self):
        assert natural_loops(build_diamond()) == []

    def test_innermost_loops_from_source(self):
        module = lower_checked("""
            int nested(int n) {
                int s = 0;
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < n; j++)
                        s += i * j;
                return s;
            }""")
        func = module["nested"]
        loops = natural_loops(func)
        inner = innermost_loops(func)
        assert len(loops) == 2
        assert len(inner) == 1
        assert inner[0].body < max(loops, key=lambda l: len(l.body)).body

    def test_remove_unreachable(self):
        func = build_diamond()
        dead = func.new_block("dead")
        builder = IRBuilder(func)
        builder.set_block(dead)
        builder.ret(Const(0, ty.I32))
        assert remove_unreachable(func) == 1
        assert all(b.label != "dead4" for b in func.blocks)


class TestLiveness:
    def test_param_live_into_loop(self):
        func = build_loop()
        info = analyze(func)
        head = func.blocks[1].label
        n = func.params[0]
        assert n in info[head].live_in

    def test_loop_variable_live_around_backedge(self):
        func = build_loop()
        info = analyze(func)
        body = func.blocks[2].label
        i_reg = next(r for r in info[body].use if r.name == "i")
        assert i_reg in info[body].live_out or \
            i_reg in info[func.blocks[1].label].live_in

    def test_live_ranges_cover_defs_and_uses(self):
        func = build_loop()
        ranges = live_ranges(func)
        for reg, (start, end) in ranges.items():
            assert start <= end

    def test_max_live_positive(self):
        assert max_live(build_loop()) >= 2


class TestVerifier:
    def test_accepts_well_formed(self):
        verify_function(build_diamond())
        verify_function(build_loop())

    def test_rejects_missing_terminator(self):
        func = Function("bad", ty.VOID)
        func.new_block("entry")
        with pytest.raises(IRVerifyError):
            verify_function(func)

    def test_rejects_branch_to_unknown_label(self):
        func = Function("bad", ty.VOID)
        block = func.new_block("entry")
        block.append(Jump("nowhere"))
        with pytest.raises(IRVerifyError):
            verify_function(func)

    def test_rejects_type_mismatch_in_binop(self):
        func = Function("bad", ty.I32)
        block = func.new_block("entry")
        builder = IRBuilder(func)
        builder.set_block(block)
        from repro.ir import BinOp
        dst = func.new_reg(ty.I32)
        block.append(BinOp("add", dst, Const(1, ty.I64), Const(2, ty.I32),
                           ty.I32))
        block.append(Ret(dst))
        with pytest.raises(IRVerifyError):
            verify_function(func)

    def test_rejects_use_of_undefined_register(self):
        func = Function("bad", ty.I32)
        block = func.new_block("entry")
        ghost = func.new_reg(ty.I32)
        block.append(Ret(ghost))
        with pytest.raises(IRVerifyError):
            verify_function(func)

    def test_rejects_use_before_single_def_in_block(self):
        func = Function("bad", ty.I32)
        block = func.new_block("entry")
        reg = func.new_reg(ty.I32)
        copy = func.new_reg(ty.I32)
        block.append(Move(copy, reg))
        block.append(Move(reg, Const(1, ty.I32)))
        block.append(Ret(copy))
        with pytest.raises(IRVerifyError):
            verify_function(func)

    def test_rejects_wrong_return_type(self):
        func = Function("bad", ty.F32)
        block = func.new_block("entry")
        block.append(Ret(Const(1, ty.I32)))
        with pytest.raises(IRVerifyError):
            verify_function(func)

    def test_rejects_mid_block_terminator(self):
        func = Function("bad", ty.VOID)
        block = func.new_block("entry")
        block.append(Ret())
        block.append(Ret())
        with pytest.raises(IRVerifyError):
            verify_function(func)

    def test_lowered_sources_always_verify(self):
        module = lower_checked("""
            int gcd(int a, int b) {
                while (b != 0) { int t = a % b; a = b; b = t; }
                return a;
            }
            double horner(double *c, int n, double x) {
                double acc = 0.0;
                for (int i = n - 1; i >= 0; i--) acc = acc * x + c[i];
                return acc;
            }""")
        assert len(list(module)) == 2   # verification happens in helper
