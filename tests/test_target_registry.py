"""The target registry and backend protocol.

Covers the api_redesign acceptance surface: registry mechanics and the
unified ``UnknownTargetError``, a target registered at runtime from
user code (no edits under ``src/repro/``) flowing through the
compilation service, ``compare_flows`` and the KPN mapper, the
``wasm32`` stack backend differentially verified against the VM over
every workload kernel, ``TargetDesc`` pickling across the
``ProcessPoolExecutor`` seam, cache-key separation between same-named
targets, and the guard that keeps ``repro`` internals off direct
catalog-constant imports.
"""

import concurrent.futures
import pathlib
import pickle
import re
from dataclasses import replace

import pytest

from repro.core import (
    Core, DeploymentManager, Platform, compare_flows, deploy,
    offline_compile,
)
from repro.core.online import select_bytecode
from repro.semantics import Memory, TrapError
from repro.service import (
    CompilationService, CompileRequest, SCHEMA_VERSION,
)
from repro.service.deployment import DeploymentPool
from repro.targets import (
    ARM, WASM32, X86, Backend, CostModel, SizeModel, Simulator,
    StackImage, TargetDesc, UnknownBackendError, UnknownTargetError,
    as_target, backend_for, executor_for, get_target, register_target,
    target_names, unregister_target,
)
from repro.vm.interpreter import VM
from repro.workloads import ALL_KERNELS, TABLE1


def make_custom_target(name="rv32imv", **overrides) -> TargetDesc:
    """A RISC-V-class embedded core with the vector extension —
    defined entirely in user (test) code, never in the repro tree."""
    fields = dict(
        name=name,
        description="RISC-V RV32IMV-class embedded core",
        has_simd=True,
        int_regs=26,
        flt_regs=30,
        vec_regs=30,
        costs=CostModel(alu=1, mul=4, div=32, fp_alu=2, fp_mul=4,
                        fp_div=24, load=2, store=2, branch=1, jump=1,
                        vec_alu=1, vec_mul=2, vec_load=2, vec_store=2,
                        vec_splat=1, vec_reduce=3),
        sizes=SizeModel(fixed=4, prologue_bytes=12),
        clock_scale=0.8,
    )
    fields.update(overrides)
    return TargetDesc(**fields)


@pytest.fixture
def custom_target():
    target = register_target(make_custom_target())
    try:
        yield target
    finally:
        unregister_target(target.name)


class TestRegistryBasics:
    def test_get_and_as_target_resolve_names(self):
        assert get_target("x86") is as_target("x86")
        assert as_target(X86) is X86

    def test_as_target_passes_unregistered_descriptors_through(self):
        ad_hoc = replace(X86, name="x86k6", int_regs=6)
        assert as_target(ad_hoc) is ad_hoc

    def test_unknown_name_lists_registered(self):
        with pytest.raises(UnknownTargetError) as info:
            get_target("z80")
        assert "x86" in str(info.value)
        assert "wasm32" in str(info.value)
        assert info.value.target_name == "z80"

    def test_unknown_target_error_is_keyerror_and_valueerror(self):
        # KeyError keeps legacy `except KeyError` call sites working;
        # ValueError matches UnknownFlowError ergonomics.
        with pytest.raises(KeyError):
            as_target("z80")
        with pytest.raises(ValueError):
            as_target("z80")

    def test_duplicate_registration_rejected(self, custom_target):
        with pytest.raises(ValueError, match="already registered"):
            register_target(make_custom_target())
        # replace=True swaps the entry in place
        bigger = register_target(
            make_custom_target(int_regs=30), replace=True)
        assert get_target(custom_target.name) is bigger

    def test_register_rejects_non_descriptor(self):
        with pytest.raises(TypeError):
            register_target("x86")

    def test_register_rejects_unknown_backend(self):
        bad = make_custom_target(name="bad-backend", backend="llvm")
        with pytest.raises(UnknownBackendError, match="native"):
            register_target(bad)

    def test_backend_for_resolves_protocol_object(self):
        assert isinstance(backend_for("x86"), Backend)
        assert backend_for("wasm32").name == "stack"
        assert backend_for("x86").cost_model(X86) is X86.costs
        assert backend_for("x86").size_model(X86) is X86.sizes

    def test_cache_key_separates_same_named_targets(self):
        a = make_custom_target()
        b = make_custom_target(costs=CostModel(alu=2))
        assert a.cache_key() != b.cache_key()
        assert a.cache_key() == make_custom_target().cache_key()
        assert a.cache_key().startswith("rv32imv#")

    def test_builtin_names_present(self):
        names = target_names()
        for name in ("x86", "sparc", "ppc", "dsp", "host", "arm",
                     "wasm32"):
            assert name in names


class TestCustomTargetEndToEnd:
    """A runtime-registered target must flow through every layer with
    zero edits under src/repro/ — the acceptance criterion."""

    def test_service_deploy_by_name(self, custom_target):
        kernel = TABLE1["saxpy_fp"]
        service = CompilationService()
        try:
            result = service.submit(CompileRequest(
                source=kernel.source, name="saxpy",
                targets=["rv32imv", "x86"], flow="split"))
            assert set(result.target_names) == {"rv32imv", "x86"}
            image = result.image_for("rv32imv")
            memory = Memory()
            run = kernel.prepare(memory, 64, seed=3)
            sim = executor_for(image, memory).run(kernel.entry,
                                                  run.args)
            assert sim.cycles > 0
        finally:
            service.shutdown()

    def test_compare_flows_by_name(self, custom_target):
        kernel = TABLE1["sum_u8"]
        artifact = offline_compile(kernel.source)

        def make_args(memory):
            return kernel.prepare(memory, 128, seed=5).args

        reports = compare_flows(artifact, "rv32imv", kernel.entry,
                                make_args)
        assert {r.target for r in reports} == {"rv32imv"}
        values = {repr(r.value) for r in reports}
        assert len(values) == 1          # flows agree on the result
        # SIMD target: the split flow beats the scalar baseline
        by_flow = {r.flow: r for r in reports}
        assert by_flow["split"].cycles < by_flow["offline-only"].cycles

    def test_kpn_mapping_schedules_custom_core(self, custom_target):
        from repro.kpn import (
            deploy_actor_images, estimate_costs, greedy_map,
            simulate_makespan,
        )
        from repro.workloads.pipeline import (
            PIPELINE_SOURCE, build_pipeline,
        )

        service = CompilationService()
        try:
            artifact = service.artifact(PIPELINE_SOURCE)
            network = build_pipeline()
            platform = Platform("host + rv32imv",
                                [Core("host", 2), Core("rv32imv", 1)])
            manager = DeploymentManager(platform, service=service)
            images = manager.install(artifact)
            assert "rv32imv" in images
            costs = estimate_costs(network, images, platform)
            mapping = greedy_map(network, platform, costs)
            makespan = simulate_makespan(network, platform, mapping,
                                         costs, blocks=4)
            assert makespan > 0
            # the SIMD-hungry actors prefer the vector-capable core
            cores = platform.core_list()
            placed = {cores[i].name for i in mapping.assignment.values()}
            assert "rv32imv" in placed
            actor_images = deploy_actor_images(network, artifact,
                                               platform, mapping,
                                               service)
            for actor, core in mapping.assignment.items():
                kind = cores[core].name
                assert actor_images[actor] is images[kind]
        finally:
            service.shutdown()


class TestWasm32Differential:
    """The stack backend must agree with the VM on values and traps —
    across every workload kernel, for both bytecode flavours."""

    @pytest.mark.parametrize("kernel_name", sorted(ALL_KERNELS))
    @pytest.mark.parametrize("flow", ["split", "offline-only"])
    def test_values_match_vm(self, kernel_name, flow):
        kernel = ALL_KERNELS[kernel_name]
        artifact = offline_compile(kernel.source)
        bytecode = select_bytecode(artifact, flow)

        vm_memory = Memory()
        vm_run = kernel.prepare(vm_memory, 96, seed=11)
        vm_value = VM(bytecode, vm_memory).call(kernel.entry,
                                                vm_run.args)

        image = deploy(artifact, "wasm32", flow)
        assert isinstance(image, StackImage)
        memory = Memory()
        run = kernel.prepare(memory, 96, seed=11)
        result = executor_for(image, memory).run(kernel.entry, run.args)
        assert repr(result.value) == repr(vm_value)
        assert result.instructions > 0
        assert result.cycles == \
            result.instructions * image.dispatch_cost
        for elem_ty, addr, count in run.outputs:
            assert memory.read_array(elem_ty, addr, count) == \
                vm_memory.read_array(elem_ty, addr, count)

    @pytest.mark.parametrize("source,args,message", [
        ("int f(int a) { return 10 / a; }", [0], "division by zero"),
        ("int f(int p) { int x[4]; return x[p]; }", [1 << 20],
         "out of bounds"),
    ])
    def test_traps_match_vm(self, source, args, message):
        artifact = offline_compile(source)
        bytecode = select_bytecode(artifact, "split")
        with pytest.raises(TrapError, match=message) as vm_trap:
            VM(bytecode, Memory()).call("f", list(args))
        image = deploy(artifact, "wasm32", "split")
        with pytest.raises(TrapError, match=message) as stack_trap:
            executor_for(image, Memory()).run("f", list(args))
        assert str(stack_trap.value) == str(vm_trap.value)

    def test_vectorized_bytecode_is_cheaper_on_wasm32(self):
        # Fewer, wider instructions -> fewer interpretive dispatches:
        # the split-flow story survives the backend swap.
        kernel = TABLE1["vecadd_fp"]
        artifact = offline_compile(kernel.source)

        def make_args(memory):
            return kernel.prepare(memory, 256, seed=2).args

        reports = compare_flows(artifact, "wasm32", kernel.entry,
                                make_args,
                                flows=["offline-only", "split"])
        by_flow = {r.flow: r for r in reports}
        assert by_flow["split"].cycles < by_flow["offline-only"].cycles

    def test_unregistered_stack_target_still_gets_stack_executor(self):
        """The image names its builder backend, so executor_for must
        not fall back to the native Simulator for an ad-hoc stack
        descriptor that was never registered."""
        ad_hoc = replace(WASM32, name="wasm-fast",
                         clock_scale=2.0)
        kernel = TABLE1["sum_u8"]
        artifact = offline_compile(kernel.source)
        image = deploy(artifact, ad_hoc, "split")
        assert isinstance(image, StackImage)
        assert image.backend_name == "stack"
        memory = Memory()
        run = kernel.prepare(memory, 64, seed=4)
        result = executor_for(image, memory).run(kernel.entry, run.args)
        assert result.cycles == \
            result.instructions * image.dispatch_cost

    def test_stack_codegen_skips_regalloc(self):
        image = deploy(offline_compile(TABLE1["saxpy_fp"].source),
                       "wasm32", "split")
        assert all(f.spill_slot_count == 0
                   for f in image.functions.values())
        assert image.total_jit_analysis_work == 0
        assert image.total_code_bytes > 0

    def test_backend_warm_hook(self):
        image = deploy(offline_compile(TABLE1["sum_u8"].source),
                       "wasm32", "split")
        warmed = backend_for("wasm32").warm(image)
        assert warmed is image
        for func in image.module:
            assert getattr(func, "_predecode_cache", None) is not None

    def test_wasm32_through_service_and_kpn_mapper(self):
        """The stack backend rides the service memo and is schedulable
        next to native cores — heterogeneous in *backend*, not just
        cost model."""
        from repro.kpn import estimate_costs, greedy_map
        from repro.workloads.pipeline import (
            PIPELINE_SOURCE, build_pipeline,
        )

        service = CompilationService()
        try:
            artifact = service.artifact(PIPELINE_SOURCE)
            network = build_pipeline()
            platform = Platform("host + wasm32",
                                [Core("host", 2), Core("wasm32", 1)])
            manager = DeploymentManager(platform, service=service)
            images = manager.install(artifact)
            assert isinstance(images["wasm32"], StackImage)
            # the image memo serves the stack image like any other
            again = service.deploy(artifact, "wasm32", "split")
            assert again is images["wasm32"]
            costs = estimate_costs(network, images, platform)
            assert all(costs[(a, "wasm32")] > 0
                       for a in network.actors)
            mapping = greedy_map(network, platform, costs)
            assert set(mapping.assignment) == set(network.actors)
        finally:
            service.shutdown()


def _identity(value):
    return value


class TestPickling:
    def test_target_desc_pickle_round_trip(self):
        for target in (X86, ARM, WASM32, make_custom_target()):
            clone = pickle.loads(pickle.dumps(target))
            assert clone == target
            assert clone.cache_key() == target.cache_key()
            assert clone.backend == target.backend

    def test_target_desc_crosses_process_pool_seam(self):
        with concurrent.futures.ProcessPoolExecutor(max_workers=1) \
                as pool:
            echoed = list(pool.map(_identity,
                                   [X86, WASM32, make_custom_target()]))
        assert echoed == [X86, WASM32, make_custom_target()]


class TestCacheKeySeparation:
    def test_same_name_different_models_get_distinct_images(self):
        artifact = offline_compile(TABLE1["sum_u8"].source)
        fast = make_custom_target(name="niche")
        slow = make_custom_target(name="niche",
                                  costs=CostModel(alu=3, load=9))
        pool = DeploymentPool(max_workers=2)
        try:
            image_fast = pool.deploy_one(artifact, fast)
            image_slow = pool.deploy_one(artifact, slow)
            assert image_fast is not image_slow
            assert pool.stats.compiles == 2
            assert pool.stats.memo_hits == 0
            # same descriptor again: memoized
            assert pool.deploy_one(artifact, fast) is image_fast
            assert pool.stats.memo_hits == 1
            keys = pool.known_keys()
            assert len({key[1] for key in keys}) == 2
            assert all(key[1].startswith(f"{SCHEMA_VERSION}:niche#")
                       for key in keys)
        finally:
            pool.shutdown()

    def test_modeled_cycles_differ_between_the_aliased_targets(self):
        kernel = TABLE1["sum_u8"]
        artifact = offline_compile(kernel.source)
        fast = make_custom_target(name="niche")
        slow = make_custom_target(name="niche",
                                  costs=CostModel(alu=3, load=9))
        cycles = {}
        for tag, target in (("fast", fast), ("slow", slow)):
            compiled = deploy(artifact, target, "split")
            memory = Memory()
            run = kernel.prepare(memory, 64, seed=9)
            cycles[tag] = executor_for(compiled, memory).run(
                kernel.entry, run.args).cycles
        assert cycles["slow"] > cycles["fast"]


class TestUnifiedErrorPaths:
    """Unknown-target failures must surface as UnknownTargetError from
    every entry point, never a raw KeyError/AttributeError mid-stack."""

    def test_deploy(self):
        artifact = offline_compile(TABLE1["sum_u8"].source)
        with pytest.raises(UnknownTargetError, match="registered"):
            deploy(artifact, "z80")

    def test_service_deploy_many_fails_before_compiling(self):
        service = CompilationService()
        try:
            artifact = service.artifact(TABLE1["sum_u8"].source)
            with pytest.raises(UnknownTargetError):
                service.deploy_many(artifact, ["x86", "z80"])
            assert service.stats().deploy_compiles == 0
        finally:
            service.shutdown()

    def test_service_submit(self):
        service = CompilationService()
        try:
            with pytest.raises(UnknownTargetError):
                service.submit(CompileRequest(
                    source=TABLE1["sum_u8"].source,
                    targets=["z80"]))
        finally:
            service.shutdown()

    def test_platform_core(self):
        with pytest.raises(UnknownTargetError):
            Core("z80", 2)

    def test_compare_flows(self):
        artifact = offline_compile(TABLE1["sum_u8"].source)
        with pytest.raises(UnknownTargetError):
            compare_flows(artifact, "z80", "sum_u8", lambda m: [])

    def test_iterative_evaluate(self):
        from repro.iterative.search import (
            default_configuration, evaluate,
        )
        with pytest.raises(UnknownTargetError):
            evaluate(TABLE1["sum_u8"], default_configuration(), "z80",
                     n=8)

    def test_compile_for_target(self):
        from repro.jit import compile_for_target
        artifact = offline_compile(TABLE1["sum_u8"].source)
        with pytest.raises(UnknownTargetError):
            compile_for_target(artifact.bytecode, "z80")


class TestNoDirectCatalogImports:
    """Guard: only targets/ itself may touch the catalog constants —
    everything else goes through the registry (the whole point of the
    redesign; a regression here reopens the hardcoded-catalog seam)."""

    BANNED = re.compile(
        r"from\s+repro\.targets\.catalog\s+import"
        r"|import\s+repro\.targets\.catalog"
        r"|from\s+repro\.targets(?:\.catalog)?\s+import[^\n]*\b"
        r"(?:X86|SPARC|PPC|DSP|HOST|ARM|TARGETS|target_by_name)\b")

    def test_no_module_outside_targets_imports_catalog_constants(self):
        src = pathlib.Path(__file__).parent.parent / "src" / "repro"
        offenders = []
        for path in sorted(src.rglob("*.py")):
            if path.parent.name == "targets":
                continue
            if self.BANNED.search(path.read_text()):
                offenders.append(str(path.relative_to(src)))
        assert not offenders, (
            f"modules importing catalog constants directly (use the "
            f"target registry instead): {offenders}")
