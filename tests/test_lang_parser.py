"""Parser unit tests."""

import pytest

from repro.lang import ast
from repro.lang import types as ty
from repro.lang.errors import ParseError
from repro.lang.parser import parse


def parse_expr(text):
    """Parse an expression by wrapping it in a function body."""
    program = parse(f"int f(void) {{ return {text}; }}")
    return program.funcs[0].body.stmts[0].value


class TestDeclarations:
    def test_simple_function(self):
        program = parse("int add(int a, int b) { return a + b; }")
        func = program.funcs[0]
        assert func.name == "add"
        assert func.ret_type == ty.I32
        assert [p.name for p in func.params] == ["a", "b"]

    def test_void_param_list(self):
        func = parse("int f(void) { return 0; }").funcs[0]
        assert func.params == []

    def test_pointer_types(self):
        func = parse("void f(float *x, char **y) {}").funcs[0]
        assert func.params[0].param_type == ty.PointerType(ty.F32)
        assert func.params[1].param_type == \
            ty.PointerType(ty.PointerType(ty.I8))

    def test_unsigned_types(self):
        func = parse("void f(unsigned char a, unsigned short b, "
                     "unsigned int c, unsigned long d) {}").funcs[0]
        got = [p.param_type for p in func.params]
        assert got == [ty.U8, ty.U16, ty.U32, ty.U64]

    def test_array_param_decays_to_pointer(self):
        func = parse("void f(int a[10]) {}").funcs[0]
        assert func.params[0].param_type == ty.PointerType(ty.I32)

    def test_local_array_declaration(self):
        program = parse("void f(void) { int buf[16]; }")
        decl = program.funcs[0].body.stmts[0]
        assert isinstance(decl, ast.VarDecl)
        assert decl.var_type == ty.ArrayType(ty.I32, 16)

    def test_two_dimensional_array(self):
        program = parse("void f(void) { float m[3][4]; }")
        decl = program.funcs[0].body.stmts[0]
        assert decl.var_type == ty.ArrayType(ty.ArrayType(ty.F32, 4), 3)

    def test_prototype_without_body(self):
        program = parse("int g(int x); int f(void) { return g(1); }")
        assert program.funcs[0].body is None

    def test_pointer_return_type(self):
        func = parse("int *f(int *p) { return p; }").funcs[0]
        assert func.ret_type == ty.PointerType(ty.I32)


class TestStatements:
    def test_if_else_chain(self):
        program = parse("""
            int f(int x) {
                if (x > 0) return 1;
                else if (x < 0) return -1;
                else return 0;
            }""")
        stmt = program.funcs[0].body.stmts[0]
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.otherwise, ast.If)

    def test_for_with_declaration(self):
        program = parse("void f(void) { for (int i = 0; i < 9; i++) ; }")
        loop = program.funcs[0].body.stmts[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.VarDecl)
        assert isinstance(loop.step, ast.IncDec)

    def test_for_with_empty_clauses(self):
        program = parse("void f(void) { for (;;) break; }")
        loop = program.funcs[0].body.stmts[0]
        assert loop.init is None and loop.cond is None and loop.step is None

    def test_do_while(self):
        program = parse("void f(int n) { do { n--; } while (n); }")
        stmt = program.funcs[0].body.stmts[0]
        assert isinstance(stmt, ast.DoWhile)

    def test_break_continue(self):
        program = parse(
            "void f(void) { while (1) { if (1) break; continue; } }")
        body = program.funcs[0].body.stmts[0].body
        assert isinstance(body.stmts[1], ast.Continue)


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_shift_vs_relational(self):
        expr = parse_expr("1 << 2 < 3")
        assert expr.op == "<"
        assert expr.left.op == "<<"

    def test_logical_precedence(self):
        expr = parse_expr("a || b && c")
        assert expr.op == "||"
        assert expr.right.op == "&&"

    def test_assignment_right_associative(self):
        program = parse("void f(int a, int b) { a = b = 1; }")
        expr = program.funcs[0].body.stmts[0].expr
        assert isinstance(expr, ast.Assign)
        assert isinstance(expr.value, ast.Assign)

    def test_conditional_expression(self):
        expr = parse_expr("a ? b : c ? d : e")
        assert isinstance(expr, ast.Conditional)
        assert isinstance(expr.otherwise, ast.Conditional)

    def test_cast_vs_parenthesized(self):
        cast = parse_expr("(float)x")
        assert isinstance(cast, ast.Cast)
        assert cast.target_type == ty.F32
        paren = parse_expr("(x)")
        assert isinstance(paren, ast.Ident)

    def test_cast_to_pointer(self):
        cast = parse_expr("(int*)p")
        assert cast.target_type == ty.PointerType(ty.I32)

    def test_sizeof_type(self):
        expr = parse_expr("sizeof(double)")
        assert isinstance(expr, ast.SizeOf)
        assert expr.target_type == ty.F64

    def test_unary_chain(self):
        expr = parse_expr("-~!x")
        assert expr.op == "-"
        assert expr.operand.op == "~"
        assert expr.operand.operand.op == "!"

    def test_deref_and_addressof(self):
        expr = parse_expr("*&x")
        assert isinstance(expr, ast.Deref)
        assert isinstance(expr.operand, ast.AddrOf)

    def test_call_with_arguments(self):
        expr = parse_expr("g(1, x + 2, h())")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 3
        assert isinstance(expr.args[2], ast.Call)

    def test_index_chains(self):
        expr = parse_expr("m[i][j]")
        assert isinstance(expr, ast.Index)
        assert isinstance(expr.base, ast.Index)

    def test_postfix_incdec(self):
        expr = parse_expr("x++")
        assert isinstance(expr, ast.IncDec)
        assert expr.is_postfix

    def test_unary_plus_is_identity(self):
        expr = parse_expr("+x")
        assert isinstance(expr, ast.Ident)


class TestParseErrors:
    @pytest.mark.parametrize("source", [
        "int f(void) { return 1 }",            # missing semicolon
        "int f(void) { return (1; }",          # unbalanced paren
        "int f(void) {",                       # unterminated block
        "int 2f(void) { return 0; }",          # bad name
        "int f(int) { return 0; }",            # unnamed param
        "banana f(void) { return 0; }",        # unknown type
        "int f(void) { sizeof(x); }",          # sizeof expr unsupported
        "int f(void) { int a[n]; }",           # non-constant array size
    ])
    def test_rejects(self, source):
        with pytest.raises(ParseError):
            parse(source)

    def test_error_position_reported(self):
        with pytest.raises(ParseError) as exc:
            parse("int f(void) {\n  return 1 2;\n}")
        assert exc.value.line == 2
