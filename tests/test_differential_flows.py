"""Differential testing: the VM and every JIT deployment must agree.

For each workload kernel, the portable reference semantics (the stack
VM interpreting the flow's bytecode flavour) is compared against the
simulated JIT output for all three deployment flows on every target in
the catalog — return value *and* output arrays, bit for bit.  A
cache-hit deployment (service memo) is compared against a cache-miss
deployment (fresh JIT) of the same triple, so the serving layer is
covered by the same oracle.
"""

from __future__ import annotations

import pytest

from repro.core import deploy
from repro.core.online import FLOWS, select_bytecode
from repro.semantics import Memory
from repro.service import CompilationService
from repro.targets import Simulator
from repro.targets.catalog import TARGETS
from repro.vm import VM
from repro.workloads import ALL_KERNELS

N = 48
SEED = 23
MEMORY_BYTES = 1 << 21


@pytest.fixture(scope="module")
def service():
    svc = CompilationService()
    yield svc
    svc.shutdown()


def _observe(run, memory, value):
    """(value, output arrays) in comparable form."""
    outputs = [memory.read_array(elem_ty, addr, count)
               for elem_ty, addr, count in run.outputs]
    return repr(value), tuple(repr(values) for values in outputs)


def vm_reference(kernel, bytecode):
    memory = Memory(MEMORY_BYTES)
    run = kernel.prepare(memory, N, SEED)
    value = VM(bytecode, memory=memory).call(kernel.entry, run.args)
    return _observe(run, memory, value)


def simulate(kernel, compiled):
    memory = Memory(MEMORY_BYTES)
    run = kernel.prepare(memory, N, SEED)
    result = Simulator(compiled, memory).run(kernel.entry, run.args)
    return _observe(run, memory, result.value)


def expected_reference(flow: str, target, scalar_ref, vector_ref):
    """Which VM run a deployment must match, exactly.

    The split flow ships the vectorized bytecode, and scalarizing JITs
    preserve its lane-by-lane evaluation order, so every split
    deployment matches the VM on the vector flavour.  offline-only
    ships and runs the scalar flavour.  online-only starts from the
    scalar flavour but re-vectorizes on SIMD targets — reassociating
    float reductions exactly the way the offline vectorizer did.
    """
    if flow == "split":
        return vector_ref
    if flow == "online-only" and target.has_simd:
        return vector_ref
    return scalar_ref


@pytest.mark.parametrize("name", sorted(ALL_KERNELS))
def test_vm_and_jit_agree_everywhere(name, service):
    """kernels × flows × targets: one oracle, every deployment."""
    kernel = ALL_KERNELS[name]
    artifact = service.artifact(kernel.source, name)
    scalar_ref = vm_reference(kernel, artifact.scalar_bytecode)
    vector_ref = vm_reference(kernel, artifact.bytecode)
    for flow in FLOWS:
        assert vm_reference(kernel, select_bytecode(artifact, flow)) \
            == (vector_ref if flow == "split" else scalar_ref)
        for target in TARGETS.values():
            compiled = service.deploy(artifact, target, flow)
            got = simulate(kernel, compiled)
            reference = expected_reference(flow, target, scalar_ref,
                                           vector_ref)
            assert got == reference, \
                f"{name}: JIT({target.name}, {flow}) diverged from VM"
    # The two references may differ only by float-reduction
    # reassociation; for everything else all 15 deployments agree.
    if kernel.elem not in ("f32", "f64") or not kernel.vectorizable:
        assert scalar_ref == vector_ref, \
            f"{name}: scalar/vector bytecode disagree"


@pytest.mark.parametrize("name", sorted(ALL_KERNELS))
@pytest.mark.parametrize("target_name", ("x86", "host"))
def test_cache_hit_matches_cache_miss(name, target_name, service):
    """A memoized image must behave exactly like a freshly JITted one."""
    kernel = ALL_KERNELS[name]
    target = TARGETS[target_name]
    artifact = service.artifact(kernel.source, name)
    warm = service.deploy(artifact, target, "split")      # memo hit
    assert service.deploy(artifact, target, "split") is warm
    cold = deploy(artifact, target, "split")              # fresh JIT
    assert cold is not warm
    assert simulate(kernel, warm) == simulate(kernel, cold)
    code_of = lambda image: [repr(i)
                             for f in image.functions.values()
                             for i in f.code]
    assert code_of(warm) == code_of(cold)


def test_cached_artifact_deploys_identically(service, tmp_path):
    """Disk-revived artifact (cache persistence) vs in-memory artifact:
    same deployments, same results, on every target."""
    kernel = ALL_KERNELS["sdot"]
    persisted = CompilationService(cache_capacity=2,
                                  persist_dir=tmp_path)
    try:
        original = persisted.artifact(kernel.source, "sdot")
        persisted.cache.clear()
        revived = persisted.compile(kernel.source, "sdot")
        assert revived.cache_hit
        assert revived.artifact is not original
        for target in TARGETS.values():
            a = simulate(kernel, deploy(original, target, "split"))
            b = simulate(kernel,
                         persisted.deploy(revived.artifact, target,
                                          "split"))
            assert a == b
    finally:
        persisted.shutdown()


# ---------------------------------------------------------------------------
# executor backends x facades: one oracle for every substrate
# ---------------------------------------------------------------------------

EXECUTOR_NAMES = ("inline", "thread", "process")
DIFF_KERNELS = ("saxpy_fp", "sum_u8", "prefix_sum")


@pytest.mark.parametrize("executor_name", EXECUTOR_NAMES)
def test_flows_agree_under_every_executor(executor_name, service):
    """The executor substrate must be invisible: images compiled
    inline, on threads or in worker processes match the default
    service byte for byte — code, modeled cycles, instruction counts
    and work numbers."""
    svc = CompilationService(executor=executor_name)
    try:
        for name in DIFF_KERNELS:
            kernel = ALL_KERNELS[name]
            artifact = svc.artifact(kernel.source, name)
            for flow in FLOWS:
                for target_name in ("x86", "sparc"):
                    target = TARGETS[target_name]
                    image = svc.deploy(artifact, target, flow)
                    reference = service.deploy(
                        service.artifact(kernel.source, name),
                        target, flow)
                    assert [repr(i) for f in image.functions.values()
                            for i in f.code] == \
                        [repr(i) for f in reference.functions.values()
                         for i in f.code], \
                        f"{name}: {executor_name}({target_name}, " \
                        f"{flow}) code diverged"
                    assert image.total_jit_work == \
                        reference.total_jit_work
                    assert simulate(kernel, image) == \
                        simulate(kernel, reference), \
                        f"{name}: {executor_name}({target_name}, " \
                        f"{flow}) results diverged"
    finally:
        svc.shutdown()


@pytest.mark.parametrize("executor_name", EXECUTOR_NAMES)
def test_async_facade_agrees_with_sync(executor_name, service):
    """Same oracle through the async front end, on every executor."""
    import asyncio

    from repro.service import AsyncCompilationService, CompileRequest

    kernel = ALL_KERNELS["sdot"]

    async def main():
        async with AsyncCompilationService(executor=executor_name) \
                as async_service:
            results = await asyncio.gather(*(
                async_service.submit(CompileRequest(
                    source=kernel.source, name="sdot",
                    targets=list(TARGETS.values()), flow=flow))
                for flow in FLOWS))
            return dict(zip(FLOWS, results))

    by_flow = asyncio.run(main())
    artifact = service.artifact(kernel.source, "sdot")
    for flow, result in by_flow.items():
        for target in TARGETS.values():
            image = result.image_for(target.name)
            reference = service.deploy(artifact, target, flow)
            assert simulate(kernel, image) == \
                simulate(kernel, reference), \
                f"async {executor_name}({target.name}, {flow}) " \
                f"diverged from sync"
