"""VM interpreter tests: functional execution of PVI bytecode."""

import pytest

from repro.bytecode import emit_module
from repro.frontend import lower_source
from repro.lang import types as ty
from repro.opt import PassManager, standard_passes
from repro.opt.vectorize import vectorize
from repro.semantics import Memory, TrapError
from repro.vm import VM
from tests.support import lower_checked


def make_vm(source, optimize=False, do_vectorize=False, memory=None):
    module = lower_checked(source)
    if optimize:
        for func in module:
            PassManager(standard_passes(), verify=True).run(func)
    if do_vectorize:
        for func in module:
            vectorize(func)
    bc, _ = emit_module(module)
    return VM(bc, memory=memory)


class TestScalarExecution:
    def test_arithmetic(self):
        vm = make_vm("int f(int a, int b) { return a * b - a / b; }")
        assert vm.call("f", [17, 5]) == 17 * 5 - 17 // 5

    def test_recursion(self):
        vm = make_vm("int fib(int n) { if (n < 2) return n; "
                     "return fib(n-1) + fib(n-2); }")
        assert vm.call("fib", [15]) == 610

    def test_void_function(self):
        memory = Memory()
        vm = make_vm("void set(int *p, int v) { *p = v; }",
                     memory=memory)
        addr = memory.alloc_array(ty.I32, [0])
        assert vm.call("set", [addr, 99]) is None
        assert memory.load(ty.I32, addr) == 99

    def test_call_chain(self):
        vm = make_vm("""
            int square(int x) { return x * x; }
            int cube(int x) { return square(x) * x; }
            int f(int x) { return cube(x) + square(x); }
        """)
        assert vm.call("f", [5]) == 125 + 25

    def test_local_arrays(self):
        vm = make_vm("""
            int f(int n) {
                int fibs[20];
                fibs[0] = 0; fibs[1] = 1;
                for (int i = 2; i < 20; i++)
                    fibs[i] = fibs[i-1] + fibs[i-2];
                return fibs[n];
            }""")
        assert vm.call("f", [10]) == 55

    def test_division_by_zero_traps(self):
        vm = make_vm("int f(int a) { return 10 / a; }")
        with pytest.raises(TrapError):
            vm.call("f", [0])

    def test_infinite_loop_exhausts_fuel(self):
        module = lower_checked("int f(void) { while (1) {} return 0; }")
        bc, _ = emit_module(module)
        vm = VM(bc, fuel=10_000)
        with pytest.raises(TrapError):
            vm.call("f", [])

    def test_float_math(self):
        vm = make_vm("""
            double norm(double x, double y) {
                return x * x + y * y;
            }""")
        assert vm.call("norm", [3.0, 4.0]) == 25.0

    def test_argument_coercion(self):
        vm = make_vm("int f(unsigned char c) { return c; }")
        assert vm.call("f", [300]) == 44        # wrapped at the boundary

    def test_unknown_function(self):
        vm = make_vm("int f(void) { return 0; }")
        with pytest.raises(TrapError):
            vm.call("ghost", [])

    def test_wrong_arity(self):
        vm = make_vm("int f(int a) { return a; }")
        with pytest.raises(TrapError):
            vm.call("f", [1, 2])


class TestVectorExecution:
    def test_vectorized_sum_matches_scalar(self):
        source = """
            int sum_u8(unsigned char *a, int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += a[i];
                return s;
            }"""
        values = list(range(100, 155))
        mem1, mem2 = Memory(), Memory()
        scalar_vm = make_vm(source, optimize=True, memory=mem1)
        vector_vm = make_vm(source, optimize=True, do_vectorize=True,
                            memory=mem2)
        a1 = mem1.alloc_array(ty.U8, values)
        a2 = mem2.alloc_array(ty.U8, values)
        assert scalar_vm.call("sum_u8", [a1, len(values)]) == \
            vector_vm.call("sum_u8", [a2, len(values)]) == sum(values)

    def test_vectorized_saxpy_updates_memory(self):
        source = """
            void saxpy(int n, float a, float *x, float *y) {
                for (int i = 0; i < n; i++) y[i] = a * x[i] + y[i];
            }"""
        memory = Memory()
        vm = make_vm(source, optimize=True, do_vectorize=True,
                     memory=memory)
        n = 21
        x = memory.alloc_array(ty.F32, [float(i) for i in range(n)])
        y = memory.alloc_array(ty.F32, [1.0] * n)
        vm.call("saxpy", [n, 2.0, x, y])
        assert memory.read_array(ty.F32, y, n) == \
            [2.0 * i + 1.0 for i in range(n)]


class TestVMvsIRInterpreter:
    """The VM and the IR interpreter must agree on everything."""

    CASES = [
        ("int f(int a, int b) { return (a << 3) ^ (b >> 1); }",
         "f", [123, -456]),
        ("int f(int n) { int s = 0; for (int i = 0; i < n; i++) "
         "s += i * i; return s; }", "f", [50]),
        ("unsigned f(unsigned a) { return a * 2654435761u; }",
         "f", [987654321]),
        ("double f(double x) { double r = 1.0; for (int i = 0; i < 10;"
         " i++) r = r * x; return r; }", "f", [1.1]),
        ("int f(int x) { return x > 0 ? x : -x; }", "f", [-17]),
    ]

    @pytest.mark.parametrize("source, entry, args", CASES)
    def test_agreement(self, source, entry, args):
        from repro.ir.interp import IRInterpreter
        module = lower_checked(source)
        expected = IRInterpreter(module).call(entry, args)
        bc, _ = emit_module(module)
        assert VM(bc).call(entry, args) == expected

    @pytest.mark.parametrize("source, entry, args", CASES)
    def test_agreement_after_optimization(self, source, entry, args):
        from repro.ir.interp import IRInterpreter
        plain = lower_checked(source)
        expected = IRInterpreter(plain).call(entry, args)
        optimized = lower_checked(source)
        for func in optimized:
            PassManager(standard_passes(), verify=True).run(func)
        bc, _ = emit_module(optimized)
        assert VM(bc).call(entry, args) == expected
