"""Target descriptions, cost models and simulator mechanics."""

import pytest

from repro.core import deploy, offline_compile
from repro.lang import types as ty
from repro.semantics import Memory, TrapError
from repro.targets import (
    ARM, DSP, HOST, PPC, SPARC, TARGETS, WASM32, X86, Simulator,
    UnknownTargetError, target_by_name, target_names,
)
from repro.targets.isa import CompiledFunction, CompiledModule, MInst
from repro.workloads import TABLE1


class TestCatalog:
    def test_all_targets_registered(self):
        assert set(TARGETS) == {"x86", "sparc", "ppc", "dsp", "host",
                                "arm"}
        # The registry additionally holds the stack-backend target.
        assert set(target_names()) >= set(TARGETS) | {"wasm32"}

    def test_lookup_by_name(self):
        assert target_by_name("x86") is X86
        assert target_by_name("arm") is ARM
        assert target_by_name("wasm32") is WASM32
        # The unified error is a KeyError subclass (legacy contract)
        # and lists the registered names (UnknownFlowError ergonomics).
        with pytest.raises(KeyError):
            target_by_name("z80")
        with pytest.raises(UnknownTargetError, match="x86"):
            target_by_name("z80")

    def test_simd_capabilities(self):
        assert X86.has_simd and DSP.has_simd and ARM.has_simd
        assert not SPARC.has_simd and not PPC.has_simd
        assert not HOST.has_simd

    def test_register_files_ordered_as_designed(self):
        # The Table 1 story depends on this ordering.
        assert SPARC.int_regs < PPC.int_regs
        assert HOST.int_regs < SPARC.int_regs

    def test_subword_penalty_only_on_sparc(self):
        assert SPARC.costs.subword_mem_extra > 0
        assert PPC.costs.subword_mem_extra == 0
        assert X86.costs.subword_mem_extra == 0

    def test_cost_model_memory_helper(self):
        assert SPARC.costs.mem("load", ty.U8) > \
            SPARC.costs.mem("load", ty.I32)
        assert X86.costs.mem("load", ty.U8) == \
            X86.costs.mem("load", ty.I32)

    def test_size_model_fixed_vs_variable(self):
        assert SPARC.sizes.size_of("alu", True) == 4
        assert X86.sizes.size_of("alu", True) > \
            X86.sizes.size_of("alu", False)


class TestSimulatorMechanics:
    def hand_module(self, code, params=0, ret=True):
        func = CompiledFunction(
            name="f", target_name="x86", code=code,
            param_locs=[("int", i) for i in range(params)],
            ret_void=not ret)
        module = CompiledModule("x86")
        module.add(func)
        return module

    def test_cycles_are_sum_of_costs(self):
        code = [
            MInst("mov", None, ("int", 0), [("imm", 1)], None, cost=3),
            MInst("mov", None, ("int", 1), [("imm", 2)], None, cost=5),
            MInst("bin", ty.I32, ("int", 0),
                  [("int", 0), ("int", 1)], "add", cost=7),
            MInst("ret", None, None, [("int", 0)], None, cost=2),
        ]
        result = Simulator(self.hand_module(code)).run("f", [])
        assert result.value == 3
        assert result.cycles == 3 + 5 + 7 + 2
        assert result.instructions == 4

    def test_uninitialized_register_traps(self):
        code = [MInst("ret", None, None, [("int", 9)], None)]
        with pytest.raises(TrapError):
            Simulator(self.hand_module(code)).run("f", [])

    def test_branch_counters(self):
        code = [
            MInst("mov", None, ("int", 0), [("imm", 3)], None),
            # 1: if r0 != 0 goto 3
            MInst("brif", None, None, [("int", 0)], 3),
            MInst("ret", None, None, [("imm", -1)], None),
            # 3: r0 -= 1 ; goto 1
            MInst("bin", ty.I32, ("int", 0),
                  [("int", 0), ("imm", 1)], "sub"),
            MInst("br", None, None, [], 1),
        ]
        # brif taken 3 times + 1 fall-through = 4; br back 3 times.
        result = Simulator(self.hand_module(code)).run("f", [])
        assert result.value == -1
        assert result.branches == 7

    def test_fuel_exhaustion(self):
        code = [MInst("br", None, None, [], 0)]
        simulator = Simulator(self.hand_module(code, ret=False),
                              fuel=100)
        with pytest.raises(TrapError):
            simulator.run("f", [])

    def test_spill_counters(self):
        code = [
            MInst("mov", None, ("int", 0), [("imm", 42)], None),
            MInst("spill.st", None, None, [("int", 0)], 0),
            MInst("spill.ld", None, ("int", 1), [], 0),
            MInst("ret", None, None, [("int", 1)], None),
        ]
        func = CompiledFunction(name="f", target_name="x86", code=code,
                                frame_bytes=16, param_locs=[],
                                ret_void=False)
        module = CompiledModule("x86")
        module.add(func)
        result = Simulator(module).run("f", [])
        assert result.value == 42
        assert result.spill_stores == 1
        assert result.spill_loads == 1

    def test_empty_spill_slot_reload_traps(self):
        code = [
            MInst("spill.ld", None, ("int", 0), [], 8),
            MInst("ret", None, None, [("int", 0)], None),
        ]
        func = CompiledFunction(name="f", target_name="x86", code=code,
                                frame_bytes=16, param_locs=[],
                                ret_void=False)
        module = CompiledModule("x86")
        module.add(func)
        with pytest.raises(TrapError):
            Simulator(module).run("f", [])


class TestCrossTargetConsistency:
    def test_cycles_differ_but_results_match(self):
        kernel = TABLE1["sum_u16"]
        artifact = offline_compile(kernel.source)
        cycles = {}
        values = set()
        for target in (X86, SPARC, PPC, DSP, HOST):
            compiled = deploy(artifact, target, "split")
            memory = Memory()
            run = kernel.prepare(memory, 80, seed=4)
            result = Simulator(compiled, memory).run(kernel.entry,
                                                     run.args)
            cycles[target.name] = result.cycles
            values.add(result.value)
        assert len(values) == 1
        assert len(set(cycles.values())) > 1   # cost models do differ

    def test_dsp_fast_on_vector_code_slow_on_branches(self):
        vector_kernel = TABLE1["saxpy_fp"]
        artifact = offline_compile(vector_kernel.source)
        results = {}
        for target in (DSP, HOST):
            compiled = deploy(artifact, target, "split")
            memory = Memory()
            run = vector_kernel.prepare(memory, 128, seed=2)
            results[target.name] = Simulator(compiled, memory).run(
                vector_kernel.entry, run.args).cycles
        assert results["dsp"] < results["host"] / 3
