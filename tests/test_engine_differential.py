"""Triple-engine differential testing: fast and tier-2 vs reference.

The fast engines (predecoded closure threading, ``repro.vm.threaded``
and ``repro.targets.dispatch``) and the tier-2 whole-function
translations layered on top of them must be observationally identical
to the reference ladder interpreters: same values, same output arrays,
same instruction and cycle counts, and the same trap at the same
instruction with the same message — across every kernel x flow x
target combination, under fuel exhaustion at arbitrary block offsets
(including tier-2 deopt back to the metered block engine), and over
randomized programs from the property-test generator.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode import emit_module
from repro.core import deploy, offline_compile
from repro.core.online import select_bytecode
from repro.engine import (
    ENGINE_ENV, FAST, REFERENCE, TIER2, resolve_engine,
)
from repro.flows import flow_names
from repro.semantics import Memory, TrapError
from repro.service import CompilationService
from repro.targets import Simulator, X86
from repro.targets.catalog import TARGETS
from repro.targets.isa import CompiledFunction, CompiledModule, MInst
from repro.vm import VM
from repro.workloads import ALL_KERNELS
from tests.support import lower_checked
from tests.test_property_programs import int_expr, statement_list

N = 32
SEED = 5
MEMORY_BYTES = 1 << 21
#: reference last, so ``outcomes[-1]`` / ``outcomes[REFERENCE]`` is
#: always the oracle the other engines are held to
ENGINES = (FAST, TIER2, REFERENCE)


def assert_engines_agree(outcomes, context=""):
    """Every engine's observation must equal the reference one."""
    oracle = outcomes[REFERENCE]
    for engine, observed in outcomes.items():
        assert observed == oracle, \
            f"{engine} diverges from reference{context and ': '}" \
            f"{context}\n  {engine}: {observed}\n  reference: {oracle}"


@pytest.fixture(scope="module")
def service():
    svc = CompilationService()
    yield svc
    svc.shutdown()


def _vm_observation(bytecode, kernel, engine):
    memory = Memory(MEMORY_BYTES)
    run = kernel.prepare(memory, N, SEED)
    vm = VM(bytecode, memory=memory, engine=engine)
    value = vm.call(kernel.entry, run.args)
    outputs = [memory.read_array(elem_ty, addr, count)
               for elem_ty, addr, count in run.outputs]
    return (repr(value), tuple(repr(o) for o in outputs),
            vm.instructions_executed)


def _sim_observation(compiled, kernel, engine):
    memory = Memory(MEMORY_BYTES)
    run = kernel.prepare(memory, N, SEED)
    result = Simulator(compiled, memory, engine=engine).run(
        kernel.entry, run.args)
    outputs = [memory.read_array(elem_ty, addr, count)
               for elem_ty, addr, count in run.outputs]
    return (repr(result.value), tuple(repr(o) for o in outputs),
            result.instructions, result.cycles, result.branches,
            result.spill_loads, result.spill_stores, result.calls)


@pytest.mark.parametrize("name", sorted(ALL_KERNELS))
def test_engines_agree_on_every_kernel_flow_target(name, service):
    """kernels x flows x targets: the fast and tier-2 engines must
    reproduce the reference engines' values, outputs, instruction
    counts, cycle counts and counters exactly."""
    kernel = ALL_KERNELS[name]
    artifact = service.artifact(kernel.source, name)
    for flow in flow_names():
        bytecode = select_bytecode(artifact, flow)
        assert_engines_agree(
            {engine: _vm_observation(bytecode, kernel, engine)
             for engine in ENGINES},
            f"{name}: VM on flow {flow}")
        for target in TARGETS.values():
            compiled = service.deploy(artifact, target, flow)
            assert_engines_agree(
                {engine: _sim_observation(compiled, kernel, engine)
                 for engine in ENGINES},
                f"{name}: simulator on ({target.name}, {flow})")


# ---------------------------------------------------------------------------
# trap parity
# ---------------------------------------------------------------------------

def _vm_trap(source, entry, args, engine, fuel=None):
    module = lower_checked(source)
    bytecode, _ = emit_module(module)
    kwargs = {} if fuel is None else {"fuel": fuel}
    vm = VM(bytecode, engine=engine, **kwargs)
    try:
        value = vm.call(entry, args)
        return ("ok", repr(value), vm.instructions_executed)
    except TrapError as exc:
        return ("trap", str(exc), vm.instructions_executed)


class TestVMTrapParity:
    def test_division_by_zero_message(self):
        source = "int f(int a) { return 10 / a; }"
        outcomes = {engine: _vm_trap(source, "f", [0], engine)
                    for engine in ENGINES}
        assert_engines_agree(outcomes)
        assert outcomes[FAST][0] == "trap"
        assert "integer division by zero" in outcomes[FAST][1]

    def test_remainder_by_zero_message(self):
        source = "int f(int a) { return 10 % a; }"
        outcomes = {engine: _vm_trap(source, "f", [0], engine)
                    for engine in ENGINES}
        assert_engines_agree(outcomes)
        assert "integer remainder by zero" in outcomes[FAST][1]

    def test_out_of_bounds_access_message(self):
        source = "int f(int *p) { return *p; }"
        for addr in (0, 1, (1 << 22)):       # null page / beyond end
            outcomes = {engine: _vm_trap(source, "f", [addr], engine)
                        for engine in ENGINES}
            assert_engines_agree(outcomes, f"addr={addr}")
            assert outcomes[FAST][0] == "trap"
            assert "memory access out of bounds" in outcomes[FAST][1]

    def test_out_of_bounds_store_message(self):
        source = "void f(int *p) { *p = 7; }"
        outcomes = {engine: _vm_trap(source, "f", [3], engine)
                    for engine in ENGINES}
        assert_engines_agree(outcomes)
        assert "memory access out of bounds" in outcomes[FAST][1]

    @pytest.mark.parametrize("fuel", [0, 1, 2, 3, 5, 17, 100, 101,
                                      102, 103, 1001])
    def test_fuel_exhaustion_exact_instruction(self, fuel):
        """Sweeping the fuel limit across block boundaries: both
        engines must trap with the same message after executing
        exactly the same number of instructions (the block-entry
        debit plus the metered path reproduce per-instruction
        accounting precisely)."""
        source = """
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += i * i - (s >> 3);
                return s;
            }"""
        outcomes = {engine: _vm_trap(source, "f", [10_000], engine,
                                     fuel=fuel)
                    for engine in ENGINES}
        assert_engines_agree(outcomes, f"fuel={fuel}")
        fast = outcomes[FAST]
        assert fast[0] == "trap" and fast[1] == "VM fuel exhausted"
        assert fast[2] == fuel + 1       # counted like the reference

    @pytest.mark.parametrize("fuel", [5, 9, 10, 11, 12, 35, 36, 37, 60])
    def test_fuel_exhaustion_across_calls(self, fuel):
        """Fuel blocks end at calls, so caller/callee debits interleave
        exactly like per-instruction accounting."""
        source = """
            int helper(int x) { return x * x + 1; }
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += helper(i);
                return s;
            }"""
        assert_engines_agree(
            {engine: _vm_trap(source, "f", [50], engine, fuel=fuel)
             for engine in ENGINES}, f"fuel={fuel}")

    def test_mid_block_trap_rolls_back_block_debit(self):
        """A non-fuel trap mid-block must leave instructions_executed
        exactly where the reference engine leaves it — the block-entry
        debit is rolled back to the trapping instruction, so a reused
        VM has identical remaining fuel on both engines."""
        source = """
            int f(int a, int b) {
                int x = a * 3 + b;
                int y = x / b;
                return y - a + x;
            }"""
        outcomes = {engine: _vm_trap(source, "f", [7, 0], engine)
                    for engine in ENGINES}
        assert_engines_agree(outcomes)
        assert outcomes[FAST][0] == "trap"

    def test_reuse_after_trap_keeps_fuel_parity(self):
        """Catch a trap, then keep calling on the same engine
        instance: fuel exhaustion must land identically afterwards."""
        source = "int f(int a, int b) { int s = 0;"  \
                 " for (int i = 0; i < a; i++) s += i / b;"  \
                 " return s; }"
        module = lower_checked(source)
        bytecode, _ = emit_module(module)
        outcomes = {}
        for engine in ENGINES:
            vm = VM(bytecode, engine=engine, fuel=120)
            trail = []
            with pytest.raises(TrapError):
                vm.call("f", [10, 0])          # div-by-zero mid-loop
            trail.append(vm.instructions_executed)
            try:
                trail.append(("ok", vm.call("f", [50, 1])))
            except TrapError as exc:
                trail.append(("trap", str(exc)))
            trail.append(vm.instructions_executed)
            outcomes[engine] = trail
        assert_engines_agree(outcomes)

    def test_successful_run_instruction_counts_match(self):
        source = """
            int fib(int n) { if (n < 2) return n;
                             return fib(n-1) + fib(n-2); }"""
        outcomes = {engine: _vm_trap(source, "fib", [12], engine)
                    for engine in ENGINES}
        assert_engines_agree(outcomes)
        assert outcomes[FAST][0] == "ok"


class TestSimulatorTrapParity:
    def _module(self, code, frame_bytes=0, ret=True):
        func = CompiledFunction(name="f", target_name="x86", code=code,
                                frame_bytes=frame_bytes, param_locs=[],
                                ret_void=not ret)
        module = CompiledModule("x86")
        module.add(func)
        return module

    def _run(self, module, engine, fuel=None):
        kwargs = {} if fuel is None else {"fuel": fuel}
        simulator = Simulator(module, **kwargs, engine=engine)
        try:
            result = simulator.run("f", [])
            return ("ok", repr(result.value))
        except TrapError as exc:
            return ("trap", str(exc))

    def test_uninitialized_register_message(self):
        module = self._module(
            [MInst("ret", None, None, [("int", 9)], None)])
        outcomes = {engine: self._run(module, engine)
                    for engine in ENGINES}
        assert_engines_agree(outcomes)
        assert outcomes[FAST] == \
            ("trap", "f: read of uninitialized register int9")

    def test_uninitialized_register_in_alu_op(self):
        import repro.lang.types as ty
        module = self._module([
            MInst("mov", None, ("int", 0), [("imm", 3)], None),
            MInst("bin", ty.I32, ("int", 1),
                  [("int", 0), ("flt", 2)], "add"),
            MInst("ret", None, None, [("int", 1)], None),
        ])
        outcomes = {engine: self._run(module, engine)
                    for engine in ENGINES}
        assert_engines_agree(outcomes)
        assert outcomes[FAST] == \
            ("trap", "f: read of uninitialized register flt2")

    def test_uninitialized_read_when_dst_aliases_source(self):
        """dst == src must still trap on the unwritten source — the
        compiled-block writer must not count the destination as
        written before the source reads are generated."""
        import repro.lang.types as lang_ty
        from repro.ir.values import VecType
        cases = [
            [MInst("mov", None, ("int", 0), [("int", 0)], None)],
            [MInst("un", lang_ty.I32, ("int", 0), [("int", 0)], "neg")],
            [MInst("bin", lang_ty.I32, ("int", 0),
                   [("int", 0), ("imm", 1)], "add")],
            [MInst("vsplat", VecType(lang_ty.I32, 4), ("vec", 0),
                   [("vec", 0)], None)],
            # select: dst aliases the *taken* operand
            [MInst("mov", None, ("int", 1), [("imm", 1)], None),
             MInst("select", None, ("int", 0),
                   [("int", 1), ("int", 0), ("imm", 5)], None)],
        ]
        for code in cases:
            code = code + [MInst("ret", None, None, [("imm", 0)], None)]
            module = self._module(code)
            outcomes = {engine: self._run(module, engine)
                        for engine in ENGINES}
            assert_engines_agree(outcomes, repr(code))
            assert outcomes[FAST][0] == "trap", code
            assert "uninitialized register" in outcomes[FAST][1], code

    def test_select_untaken_uninitialized_operand_does_not_trap(self):
        """The reference reads only the chosen operand; an unwritten
        untaken operand must not trap in either engine."""
        module = self._module([
            MInst("mov", None, ("int", 1), [("imm", 1)], None),
            MInst("mov", None, ("int", 2), [("imm", 42)], None),
            MInst("select", None, ("int", 0),
                  [("int", 1), ("int", 2), ("int", 9)], None),
            MInst("ret", None, None, [("int", 0)], None),
        ])
        outcomes = {engine: self._run(module, engine)
                    for engine in ENGINES}
        assert_engines_agree(outcomes)
        assert outcomes[FAST] == ("ok", "42")

    def test_empty_spill_slot_message(self):
        module = self._module([
            MInst("spill.ld", None, ("int", 0), [], 8),
            MInst("ret", None, None, [("int", 0)], None),
        ], frame_bytes=16)
        outcomes = {engine: self._run(module, engine)
                    for engine in ENGINES}
        assert_engines_agree(outcomes)
        assert outcomes[FAST] == \
            ("trap", "f: reload of empty spill slot 8")

    @pytest.mark.parametrize("fuel", [0, 1, 2, 3, 7, 99, 100])
    def test_fuel_exhaustion_message(self, fuel):
        module = self._module([MInst("br", None, None, [], 0)],
                              ret=False)
        outcomes = {engine: self._run(module, engine, fuel=fuel)
                    for engine in ENGINES}
        assert_engines_agree(outcomes)
        assert outcomes[FAST] == ("trap", "simulation fuel exhausted")

    def test_fell_off_code_end(self):
        module = self._module(
            [MInst("mov", None, ("int", 0), [("imm", 1)], None)])
        outcomes = {engine: self._run(module, engine)
                    for engine in ENGINES}
        assert_engines_agree(outcomes)
        assert outcomes[FAST] == ("trap", "f: fell off code end")

    @pytest.mark.parametrize("target", [-3, -1, 7, 1000])
    def test_out_of_range_branch_target_traps(self, target):
        """Machine code has no verifier: a wild branch target must
        trap as fell-off-code-end in both engines, never end the call
        silently or escape as an IndexError."""
        module = self._module([
            MInst("mov", None, ("int", 0), [("imm", 1)], None),
            MInst("brif", None, None, [("int", 0)], target),
            MInst("ret", None, None, [("imm", 0)], None),
        ])
        outcomes = {engine: self._run(module, engine)
                    for engine in ENGINES}
        assert_engines_agree(outcomes)
        assert outcomes[FAST] == ("trap", "f: fell off code end")

    def test_division_by_zero_in_simulator(self):
        source = "int f(int a, int b) { return a / b; }"
        artifact = offline_compile(source)
        compiled = deploy(artifact, X86, "split")
        outcomes = {}
        for engine in ENGINES:
            try:
                value = Simulator(compiled, Memory(),
                                  engine=engine).run("f", [7, 0]).value
                outcomes[engine] = ("ok", repr(value))
            except TrapError as exc:
                outcomes[engine] = ("trap", str(exc))
        assert_engines_agree(outcomes)
        assert outcomes[FAST] == ("trap", "integer division by zero")


# ---------------------------------------------------------------------------
# engine selection and predecode-cache behaviour
# ---------------------------------------------------------------------------

class TestEngineSelection:
    SOURCE = "int f(int a) { return a * 3; }"

    def _bytecode(self):
        bytecode, _ = emit_module(lower_checked(self.SOURCE))
        return bytecode

    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert VM(self._bytecode()).engine == FAST
        assert resolve_engine() == FAST

    def test_env_selects_reference(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "reference")
        assert VM(self._bytecode()).engine == REFERENCE

    def test_constructor_overrides_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "reference")
        assert VM(self._bytecode(), engine=FAST).engine == FAST

    def test_invalid_engine_rejected(self, monkeypatch):
        with pytest.raises(ValueError):
            VM(self._bytecode(), engine="turbo")
        monkeypatch.setenv(ENGINE_ENV, "warp")
        with pytest.raises(ValueError):
            resolve_engine()

    def test_simulator_engine_parameter(self):
        artifact = offline_compile(self.SOURCE)
        compiled = deploy(artifact, X86, "split")
        assert Simulator(compiled, engine=REFERENCE).engine == REFERENCE


class TestPredecodeCache:
    def test_predecode_shared_across_vms(self):
        bytecode, _ = emit_module(lower_checked(
            "int f(int a) { return a + 5; }"))
        vm1 = VM(bytecode, engine=FAST)
        assert vm1.call("f", [1]) == 6
        cached = bytecode.functions["f"]._predecode_cache
        vm2 = VM(bytecode, engine=FAST)
        assert vm2.call("f", [2]) == 7
        assert bytecode.functions["f"]._predecode_cache is cached

    def test_in_place_code_edit_invalidates_by_content(self):
        bytecode, _ = emit_module(lower_checked(
            "int f(int a) { return a + 5; }"))
        assert VM(bytecode, engine=FAST).call("f", [1]) == 6
        func = bytecode.functions["f"]
        const = next(i for i in func.code if i.op == "const")
        const.arg = 9
        assert VM(bytecode, verify=False,
                  engine=FAST).call("f", [1]) == 10

    def test_machine_predecode_is_lazy_by_default(self, monkeypatch):
        from repro.engine import JIT_PREDECODE_ENV
        monkeypatch.delenv(JIT_PREDECODE_ENV, raising=False)
        artifact = offline_compile("int f(int a) { return a - 1; }")
        compiled = deploy(artifact, X86, "split")
        func = compiled.functions["f"]
        assert getattr(func, "_predecode_cache", None) is None
        Simulator(compiled, engine=FAST).run("f", [4])
        cached = func._predecode_cache
        assert cached is not None
        # a second simulator reuses the function-object cache
        Simulator(compiled, engine=FAST).run("f", [5])
        assert func._predecode_cache is cached

    def test_jit_warms_machine_predecode_when_opted_in(self,
                                                       monkeypatch):
        from repro.engine import JIT_PREDECODE_ENV
        monkeypatch.setenv(JIT_PREDECODE_ENV, "1")
        artifact = offline_compile("int f(int a) { return a - 2; }")
        compiled = deploy(artifact, X86, "split")
        func = compiled.functions["f"]
        assert getattr(func, "_predecode_cache", None) is not None

    def test_in_place_edit_picked_up_by_reused_vm(self):
        """The reviewer-grade case: the *same* VM instance must see an
        in-place code edit at its next public call (the call boundary
        revalidates against the content token)."""
        bytecode, _ = emit_module(lower_checked(
            "int f(int a) { return a + 5; }"))
        vm = VM(bytecode, verify=False, engine=FAST)
        assert vm.call("f", [1]) == 6
        func = bytecode.functions["f"]
        const = next(i for i in func.code if i.op == "const")
        const.arg = 9
        assert vm.call("f", [1]) == 10

    def test_layout_edit_invalidates_bytecode_predecode(self):
        """The token covers more than code: editing the local layout
        in place must invalidate too (the predecode bakes defaults and
        frame offsets from it)."""
        bytecode, _ = emit_module(lower_checked(
            "int f(int a) { int x = 2; return a + x; }"))
        assert VM(bytecode, engine=FAST).call("f", [1]) == 3
        func = bytecode.functions["f"]
        token_before = func.content_token()
        func.local_types = list(func.local_types) + ["i32"]
        assert func.content_token() != token_before
        assert func.cached_predecode(func.content_token()) is None

    def test_param_locs_edit_invalidates_machine_predecode(self):
        """Same for machine code: moving a parameter home must not
        reuse a predecode that sized/placed the old register files."""
        from repro.targets.dispatch import predecode_machine
        artifact = offline_compile("int f(int a) { return a; }")
        compiled = deploy(artifact, X86, "split")
        func = compiled.functions["f"]
        pre = predecode_machine(func)
        assert predecode_machine(func) is pre          # cache hit
        func.param_locs = [("flt", 0)]
        assert predecode_machine(func) is not pre      # invalidated

    def test_warm_module_predecodes_every_function(self):
        from repro.targets import warm_module
        artifact = offline_compile(
            "int g(int a) { return a * 2; }"
            "int f(int a) { return g(a) + 1; }")
        compiled = deploy(artifact, X86, "split")
        warm_module(compiled)
        for func in compiled.functions.values():
            assert getattr(func, "_predecode_cache", None) is not None


CALL_HEAVY = (
    "int h(int a) { return a + 3; }"
    "int g(int a) { int i = 0; int s = 0;"
    "  while (i < a) { s = s + h(i); i = i + 1; } return s; }"
    "int f(int a) { return g(a) + g(a + 1) + h(a); }"
)


class TestFrozenCallInlineCache:
    """Per-call inline caching: frozen modules resolve call targets
    once per predecode; unfrozen modules keep the dynamic lookup."""

    def test_offline_outputs_and_deployed_images_are_frozen(self):
        artifact = offline_compile(CALL_HEAVY)
        assert artifact.bytecode.frozen
        assert artifact.scalar_bytecode.frozen
        assert deploy(artifact, X86, "split").frozen

    def test_frozen_add_rejected(self):
        artifact = offline_compile("int f(int a) { return a; }")
        with pytest.raises(ValueError, match="frozen"):
            artifact.bytecode.add(artifact.bytecode.functions["f"])

    def test_engines_agree_on_call_heavy_frozen_module(self):
        artifact = offline_compile(CALL_HEAVY)
        fast = VM(artifact.bytecode, engine=FAST)
        reference = VM(artifact.bytecode, engine=REFERENCE)
        assert fast.call("f", [9]) == reference.call("f", [9])
        assert fast.instructions_executed == \
            reference.instructions_executed
        compiled = deploy(artifact, X86, "split")
        obs = [Simulator(compiled, Memory(), engine=engine).run("f", [9])
               for engine in ENGINES]
        for result in obs[:-1]:           # reference is last
            assert result.value == obs[-1].value
            assert result.cycles == obs[-1].cycles
            assert result.calls == obs[-1].calls

    def test_frozen_vm_binding_pins_the_callee(self):
        """The contract freezing buys: the callee is resolved once at
        predecode, so a (forbidden) post-freeze table swap is not
        observed — where an unfrozen module's dynamic lookup sees it."""
        def build():
            bytecode, _ = emit_module(lower_checked(
                "int g(int a) { return a * 2; }"
                "int f(int a) { return g(a) + 1; }"))
            other, _ = emit_module(lower_checked(
                "int g(int a) { return a * 10; }"))
            return bytecode, other.functions["g"]

        unfrozen, replacement = build()
        assert VM(unfrozen, engine=FAST).call("f", [3]) == 7
        unfrozen.functions["g"] = replacement
        # dynamic lookup: a fresh VM sees the new table
        assert VM(unfrozen, verify=False,
                  engine=FAST).call("f", [3]) == 31

        frozen, replacement = build()
        frozen.freeze()
        assert VM(frozen, verify=False, engine=FAST).call("f", [3]) == 7
        frozen.functions["g"] = replacement
        # binding pinned at predecode, even on a fresh VM
        assert VM(frozen, verify=False,
                  engine=FAST).call("f", [3]) == 7

    def test_frozen_binding_does_not_leak_across_modules(self):
        """Two frozen modules sharing the caller function object but
        mapping the callee name differently must each call their own
        callee — the cache records the binding module."""
        from repro.bytecode.module import BytecodeModule

        base, _ = emit_module(lower_checked(
            "int g(int a) { return a * 2; }"
            "int f(int a) { return g(a) + 1; }"))
        other, _ = emit_module(lower_checked(
            "int g(int a) { return a * 10; }"))
        base.freeze()
        variant = BytecodeModule("variant", {
            "f": base.functions["f"],
            "g": other.functions["g"],
        }).freeze()
        assert VM(base, verify=False, engine=FAST).call("f", [3]) == 7
        assert VM(variant, verify=False,
                  engine=FAST).call("f", [3]) == 31
        assert VM(base, verify=False, engine=FAST).call("f", [3]) == 7

    def test_frozen_machine_binding_pins_the_callee(self):
        artifact = offline_compile(
            "int g(int a) { return a * 2; }"
            "int f(int a) { return g(a) + 1; }")
        compiled = deploy(artifact, X86, "split")
        assert compiled.frozen
        sim = Simulator(compiled, engine=FAST)
        assert sim.run("f", [3]).value == 7
        other = deploy(offline_compile(
            "int g(int a) { return a * 10; }"), X86, "split")
        compiled.functions["g"] = other.functions["g"]
        # forbidden post-freeze swap: the bound callee still runs
        assert Simulator(compiled, engine=FAST).run("f", [3]).value == 7
        # the reference engine (dynamic by design) sees the new table
        assert Simulator(compiled,
                         engine=REFERENCE).run("f", [3]).value == 31

    def test_missing_callee_still_fails_at_execution_time(self):
        """A frozen module with a dead call to a missing function must
        predecode fine and only fail if the call executes (reference
        parity for unverified modules)."""
        from repro.bytecode.module import BytecodeModule

        bytecode, _ = emit_module(lower_checked(
            "int g(int a) { return a; }"
            "int f(int a) { if (a > 100) { return g(a); } return a; }"))
        hollow = BytecodeModule("hollow",
                                {"f": bytecode.functions["f"]}).freeze()
        vm = VM(hollow, verify=False, engine=FAST)
        assert vm.call("f", [5]) == 5          # dead call: no error
        with pytest.raises(KeyError):
            vm.call("f", [200])                # executed: fails now

    def test_content_edit_invalidates_frozen_binding(self):
        bytecode, _ = emit_module(lower_checked(
            "int g(int a) { return a * 2; }"
            "int f(int a) { return g(a) + 1; }"))
        bytecode.freeze()
        vm = VM(bytecode, verify=False, engine=FAST)
        assert vm.call("f", [3]) == 7
        func = bytecode.functions["f"]
        cached = func._predecode_cache
        assert cached[1] is bytecode           # binding recorded
        const = next(i for i in func.code if i.op == "const")
        const.arg = 5
        assert vm.call("f", [3]) == 11         # token revalidation wins


# ---------------------------------------------------------------------------
# randomized differential sweep (property-test program generator)
# ---------------------------------------------------------------------------

def _engine_sweep(source, entry, args):
    """Per-engine VM and simulator observations for one program."""
    bytecode, _ = emit_module(lower_checked(source))
    vm_obs = {}
    for engine in ENGINES:
        vm = VM(bytecode, engine=engine)
        vm_obs[engine] = (repr(vm.call(entry, args)),
                          vm.instructions_executed)
    artifact = offline_compile(source)
    compiled = deploy(artifact, X86, "split")
    sim_obs = {}
    for engine in ENGINES:
        result = Simulator(compiled, Memory(), engine=engine).run(
            entry, args)
        sim_obs[engine] = (repr(result.value), result.instructions,
                           result.cycles)
    return vm_obs, sim_obs


class TestRandomizedSweep:
    @settings(max_examples=25, deadline=None)
    @given(expr=int_expr(), a=st.integers(-1000, 1000),
           b=st.integers(-1000, 1000), c=st.integers(-1000, 1000))
    def test_random_expressions(self, expr, a, b, c):
        source = f"int f(int a, int b, int c) {{ return {expr}; }}"
        vm_obs, sim_obs = _engine_sweep(source, "f", [a, b, c])
        assert_engines_agree(vm_obs)
        assert_engines_agree(sim_obs)
        # VM vs simulator value
        assert vm_obs[REFERENCE][0] == sim_obs[REFERENCE][0]

    @settings(max_examples=15, deadline=None)
    @given(body=statement_list(), a=st.integers(-100, 100),
           b=st.integers(-100, 100), c=st.integers(-100, 100))
    def test_random_statements(self, body, a, b, c):
        source = f"""
        int f(int a, int b, int c) {{
            {body}
            return a ^ b ^ c;
        }}"""
        vm_obs, sim_obs = _engine_sweep(source, "f", [a, b, c])
        assert_engines_agree(vm_obs)
        assert_engines_agree(sim_obs)
        assert vm_obs[REFERENCE][0] == sim_obs[REFERENCE][0]

    @settings(max_examples=10, deadline=None)
    @given(expr=int_expr(), n=st.integers(0, 12),
           seed=st.integers(0, 99), fuel=st.integers(1, 400))
    def test_random_loops_under_fuel_pressure(self, expr, n, seed,
                                              fuel):
        """Random programs with random fuel limits: the engines must
        agree on outcome — value or trap — and on the count of
        executed instructions either way."""
        source = f"""
        int f(int a, int n) {{
            int b = {seed} - 7;
            int c = a ^ n;
            int s = 0;
            for (int i = 0; i < n; i++) {{ s += {expr}; a = a + 1; }}
            return s;
        }}"""
        bytecode, _ = emit_module(lower_checked(source))
        outcomes = {}
        for engine in ENGINES:
            vm = VM(bytecode, engine=engine, fuel=fuel)
            try:
                outcomes[engine] = ("ok", repr(vm.call("f", [seed, n])),
                                    vm.instructions_executed)
            except TrapError as exc:
                outcomes[engine] = ("trap", str(exc),
                                    vm.instructions_executed)
        assert_engines_agree(outcomes, f"fuel={fuel}")


# ---------------------------------------------------------------------------
# tier-2 whole-function translation
# ---------------------------------------------------------------------------

HOT_LOOP = (
    "int helper(int x) { return x * x + 1; }"
    "int f(int n) { int s = 0;"
    "  for (int i = 0; i < n; i++) s += helper(i) - (s >> 2);"
    "  return s; }"
)


class TestTier2Promotion:
    """Who gets whole-function translation, and when it is built."""

    def test_vm_promotes_only_hot_annotated_functions(self):
        from repro.vm.threaded import _TIER2_UNBUILT

        cold = offline_compile(HOT_LOOP, "cold")
        hot = offline_compile(HOT_LOOP, "hot", hotness={"f": 5})
        vm = VM(cold.bytecode, engine=FAST)
        assert vm.call("f", [10]) == VM(cold.bytecode,
                                        engine=REFERENCE).call("f", [10])
        pre = cold.bytecode.functions["f"]._predecode_cache[2]
        assert not pre.tier2_hot
        assert pre._tier2 is _TIER2_UNBUILT, \
            "unprofiled function must stay on the block tier"

        vm = VM(hot.bytecode, engine=FAST)
        assert vm.call("f", [10]) == VM(hot.bytecode,
                                        engine=REFERENCE).call("f", [10])
        pre_f = hot.bytecode.functions["f"]._predecode_cache[2]
        assert pre_f.tier2_hot
        assert pre_f._tier2 is not _TIER2_UNBUILT
        assert pre_f._tier2 is not None, "build must succeed"
        # the unannotated callee rides along on the block tier
        pre_h = hot.bytecode.functions["helper"]._predecode_cache[2]
        assert not pre_h.tier2_hot
        assert pre_h._tier2 is _TIER2_UNBUILT

    def test_tier2_engine_promotes_everything(self):
        from repro.vm.threaded import _TIER2_UNBUILT

        artifact = offline_compile(HOT_LOOP, "cold2")
        vm = VM(artifact.bytecode, engine=TIER2)
        assert vm.call("f", [10]) == VM(
            artifact.bytecode, engine=REFERENCE).call("f", [10])
        for name in ("f", "helper"):
            pre = artifact.bytecode.functions[name]._predecode_cache[2]
            assert pre._tier2 is not _TIER2_UNBUILT
            assert pre._tier2 is not None

    def test_sim_promotion_follows_jit_hint(self):
        from repro.flows import Flow
        from repro.jit import JITOptions
        from repro.targets.dispatch import _TIER2_UNBUILT

        artifact = offline_compile(HOT_LOOP)
        # no hotness profile, default gate: nothing is hinted
        plain = deploy(artifact, X86, "split")
        assert not any(f.tier2_hint for f in plain.functions.values())
        # explicit JITOptions(tier2=True) promotes every function
        forced = deploy(artifact, X86,
                        Flow("tier2-on", jit=JITOptions(tier2=True)))
        assert all(f.tier2_hint for f in forced.functions.values())
        sim = Simulator(forced, Memory(), engine=FAST)
        want = Simulator(plain, Memory(),
                         engine=REFERENCE).run("f", [9])
        got = sim.run("f", [9])
        assert (got.value, got.cycles, got.instructions) == \
            (want.value, want.cycles, want.instructions)
        pre = forced.functions["f"]._predecode_cache[2]
        assert pre.tier2_hint and pre._tier2 is not _TIER2_UNBUILT
        assert pre._tier2 is not None

    def test_sim_hint_from_hotness_and_explicit_off(self):
        from repro.flows import Flow
        from repro.jit import JITOptions

        hot = offline_compile(HOT_LOOP, "hot", hotness={"f": 5})
        hinted = deploy(hot, X86, "split")
        assert hinted.functions["f"].tier2_hint
        assert not hinted.functions["helper"].tier2_hint
        vetoed = deploy(hot, X86,
                        Flow("tier2-off", jit=JITOptions(tier2=False)))
        assert not any(f.tier2_hint for f in vetoed.functions.values())

    def test_warm_module_builds_hinted_tier2(self):
        from repro.targets import warm_module
        from repro.targets.dispatch import _TIER2_UNBUILT

        hot = offline_compile(HOT_LOOP, "hot", hotness={"f": 5})
        compiled = deploy(hot, X86, "split")
        warm_module(compiled)
        pre_f = compiled.functions["f"]._predecode_cache[2]
        assert pre_f._tier2 is not _TIER2_UNBUILT
        assert pre_f._tier2 is not None
        pre_h = compiled.functions["helper"]._predecode_cache[2]
        assert pre_h._tier2 is _TIER2_UNBUILT

    def test_tier2_rides_the_predecode_content_token(self):
        """An in-place code edit invalidates the predecode and with it
        the cached tier-2 code object; the rebuilt one sees the edit."""
        bytecode, _ = emit_module(lower_checked(
            "int f(int a) { return a + 5; }"))
        vm = VM(bytecode, verify=False, engine=TIER2)
        assert vm.call("f", [1]) == 6
        func = bytecode.functions["f"]
        first = func._predecode_cache[2]
        const = next(i for i in func.code if i.op == "const")
        const.arg = 9
        assert vm.call("f", [1]) == 10
        assert func._predecode_cache[2] is not first


class TestTier2DeoptParity:
    """Deopt back to the metered block engine: fuel boundaries and
    traps must land on the same instruction with the same message."""

    TRAP_AT_LEADER = """
        int f(int a, int b) {
            int s = a + 1;
            if (s > 3) { s = s / b; }
            return s + a;
        }"""

    def test_trap_on_first_instruction_after_fuel_boundary(self):
        """Brute-force sweep: every fuel value from 0 to beyond the
        trap, so some value lands the exhaustion exactly on the block
        leader whose first real instruction traps — the deopt path must
        pin the same instruction index as the reference either way."""
        for fuel in range(0, 40):
            outcomes = {engine: _vm_trap(self.TRAP_AT_LEADER, "f",
                                         [7, 0], engine, fuel=fuel)
                        for engine in ENGINES}
            assert_engines_agree(outcomes, f"fuel={fuel}")

    def test_fuel_pinned_at_every_block_leader(self):
        """For each block leader L, run with ``fuel == L`` so the
        debit of the block starting at L is the one that trips — the
        instruction count and trap must match the reference exactly."""
        from repro.engine import fuel_blocks

        bytecode, _ = emit_module(lower_checked(self.TRAP_AT_LEADER))
        leaders = sorted(fuel_blocks(bytecode.functions["f"].code))
        assert len(leaders) > 2, "test program must be multi-block"
        for leader in leaders:
            outcomes = {engine: _vm_trap(self.TRAP_AT_LEADER, "f",
                                         [7, 1], engine, fuel=leader)
                        for engine in ENGINES}
            assert_engines_agree(outcomes, f"fuel==leader {leader}")

    def test_sim_dense_fuel_sweep_with_calls_and_trap(self):
        """Simulator side: caller/callee debit interleaving plus a
        trapping callee, swept densely across fuel values; executed
        counts must match even when the run ends in a trap."""
        source = (
            "int helper(int x, int d) { return x / d; }"
            "int f(int n, int d) { int s = 0;"
            "  for (int i = 0; i < n; i++) s += helper(i + 1, d);"
            "  return s; }"
        )
        artifact = offline_compile(source)
        compiled = deploy(artifact, X86, "split")
        for d in (1, 0):                      # clean run and mid-loop trap
            for fuel in range(0, 90, 1):
                outcomes = {}
                for engine in ENGINES:
                    sim = Simulator(compiled, Memory(), engine=engine,
                                    fuel=fuel)
                    try:
                        result = sim.run("f", [20, d])
                        outcomes[engine] = (
                            "ok", repr(result.value), result.cycles,
                            result.instructions, sim._executed)
                    except TrapError as exc:
                        outcomes[engine] = ("trap", str(exc),
                                            sim._executed)
                assert_engines_agree(outcomes, f"d={d} fuel={fuel}")

    @settings(max_examples=12, deadline=None)
    @given(n=st.integers(0, 15), d=st.integers(0, 3),
           fuel=st.integers(1, 500))
    def test_random_fuel_three_way_with_calls(self, n, d, fuel):
        """Hypothesis: random fuel against a call-heavy program with a
        possible division trap — values, traps and executed counts
        agree across all three engines on both the VM and the
        simulator."""
        source = (
            "int helper(int x, int d) { return x / d; }"
            "int f(int n, int d) { int s = 0;"
            "  for (int i = 0; i < n; i++) s += helper(i + 1, d);"
            "  return s; }"
        )
        outcomes = {engine: _vm_trap(source, "f", [n, d], engine,
                                     fuel=fuel)
                    for engine in ENGINES}
        assert_engines_agree(outcomes, f"VM n={n} d={d} fuel={fuel}")
        artifact = offline_compile(source)
        compiled = deploy(artifact, X86, "split")
        sim_outcomes = {}
        for engine in ENGINES:
            sim = Simulator(compiled, Memory(), engine=engine,
                            fuel=fuel)
            try:
                result = sim.run("f", [n, d])
                sim_outcomes[engine] = ("ok", repr(result.value),
                                        result.cycles,
                                        result.instructions,
                                        sim._executed)
            except TrapError as exc:
                sim_outcomes[engine] = ("trap", str(exc), sim._executed)
        assert_engines_agree(sim_outcomes,
                             f"sim n={n} d={d} fuel={fuel}")

    def test_reused_vm_after_tier2_deopt_keeps_fuel_parity(self):
        """Deopt mid-function (fuel), catch the trap, keep calling on
        the same engine instance: remaining fuel must agree."""
        bytecode, _ = emit_module(lower_checked(HOT_LOOP))
        trails = {}
        for engine in ENGINES:
            vm = VM(bytecode, engine=engine, fuel=200)
            trail = []
            with pytest.raises(TrapError):
                vm.call("f", [10_000])          # exhausts mid-loop
            trail.append(vm.instructions_executed)
            try:
                trail.append(("ok", vm.call("f", [3])))
            except TrapError as exc:
                trail.append(("trap", str(exc)))
            trail.append(vm.instructions_executed)
            trails[engine] = trail
        assert_engines_agree(trails)


# ---------------------------------------------------------------------------
# on-stack replacement
# ---------------------------------------------------------------------------

class TestOSR:
    """Mid-call tiering: a call spinning in the block tier enters
    tier-2 at a hot loop header, and a deopted call re-enters the same
    way — all of it held to exact value/instruction/trap parity with
    the reference ladder."""

    #: single long loop, no hotness annotation: starts on the block
    #: tier and can only reach tier-2 through OSR
    LONG_LOOP = (
        "int f(int n) { int s = 0;"
        "  for (int i = 0; i < n; i++) s += i * 3 - (s >> 2);"
        "  return s; }"
    )

    #: multi-block loop body (branchy), so the loop carries interior
    #: leaders distinct from the header — deopt points for the forced
    #: re-entry tests and extra fuel boundaries for the sweeps
    BRANCHY_LOOP = (
        "int f(int n) { int s = 0;"
        "  for (int i = 0; i < n; i++) {"
        "    if (i & 1) { s += i * 3; } else { s -= i; }"
        "    s = s ^ (s >> 2);"
        "  }"
        "  return s; }"
    )

    # -- entry parity and counters ----------------------------------------

    def test_vm_osr_entry_matches_reference(self):
        bytecode, _ = emit_module(lower_checked(self.LONG_LOOP))
        want = VM(bytecode, engine=REFERENCE)
        want_value = want.call("f", [1_000])
        vm = VM(bytecode, engine=FAST, osr=True, osr_threshold=8)
        assert vm.call("f", [1_000]) == want_value
        assert vm.instructions_executed == want.instructions_executed
        stats = vm.tiering_stats()
        assert stats["osr_entries"] >= 1, \
            "an unannotated hot loop must tier up mid-call"
        assert stats["tier2_promotions"] == 0, \
            "no hotness hint: the call must not start in tier-2"
        assert stats["deopt_reentries"] == 0

    def test_sim_osr_entry_matches_reference(self):
        artifact = offline_compile(self.LONG_LOOP)
        compiled = deploy(artifact, X86, "split")
        want = Simulator(compiled, Memory(),
                         engine=REFERENCE).run("f", [1_000])
        sim = Simulator(compiled, Memory(), engine=FAST,
                        osr=True, osr_threshold=8)
        got = sim.run("f", [1_000])
        assert (got.value, got.instructions, got.cycles,
                got.branches) == (want.value, want.instructions,
                                  want.cycles, want.branches)
        stats = sim.tiering_stats()
        assert stats["osr_entries"] >= 1
        assert stats["tier2_promotions"] == 0

    def test_vm_osr_off_knob(self):
        bytecode, _ = emit_module(lower_checked(self.LONG_LOOP))
        want = VM(bytecode, engine=REFERENCE).call("f", [1_000])
        vm = VM(bytecode, engine=FAST, osr=False, osr_threshold=8)
        assert vm.call("f", [1_000]) == want
        assert vm.tiering_stats()["osr_entries"] == 0

    def test_osr_env_knob(self, monkeypatch):
        from repro.engine import OSR_ENV

        bytecode, _ = emit_module(lower_checked(self.LONG_LOOP))
        monkeypatch.setenv(OSR_ENV, "0")
        off = VM(bytecode, engine=FAST, osr_threshold=8)
        off.call("f", [1_000])
        assert off.tiering_stats()["osr_entries"] == 0
        monkeypatch.setenv(OSR_ENV, "1")
        on = VM(bytecode, engine=FAST, osr_threshold=8)
        on.call("f", [1_000])
        assert on.tiering_stats()["osr_entries"] >= 1

    # -- fuel boundaries across OSR entries --------------------------------

    def test_vm_fuel_sweep_across_osr_boundaries(self):
        """Dense fuel sweep with a tiny OSR threshold: some fuel value
        lands the exhaustion on every block leader — including the
        snapshot leaders OSR enters at — and the trap must pin the same
        instruction as the reference every time."""
        bytecode, _ = emit_module(lower_checked(self.BRANCHY_LOOP))
        for fuel in range(0, 260):
            outcomes = {}
            for engine in ENGINES:
                vm = VM(bytecode, engine=engine, fuel=fuel,
                        osr=True, osr_threshold=3)
                try:
                    outcomes[engine] = ("ok", repr(vm.call("f", [40])),
                                        vm.instructions_executed)
                except TrapError as exc:
                    outcomes[engine] = ("trap", str(exc),
                                        vm.instructions_executed)
            assert_engines_agree(outcomes, f"fuel={fuel}")

    def test_sim_fuel_sweep_across_osr_boundaries(self):
        artifact = offline_compile(self.BRANCHY_LOOP)
        compiled = deploy(artifact, X86, "split")
        for fuel in range(0, 300, 2):
            outcomes = {}
            for engine in ENGINES:
                sim = Simulator(compiled, Memory(), engine=engine,
                                fuel=fuel, osr=True, osr_threshold=3)
                try:
                    result = sim.run("f", [40])
                    outcomes[engine] = ("ok", repr(result.value),
                                        result.cycles,
                                        result.instructions,
                                        sim._executed)
                except TrapError as exc:
                    outcomes[engine] = ("trap", str(exc), sim._executed)
            assert_engines_agree(outcomes, f"fuel={fuel}")

    @settings(max_examples=12, deadline=None)
    @given(n=st.integers(0, 40), fuel=st.integers(1, 600),
           threshold=st.integers(1, 6))
    def test_random_fuel_with_osr(self, n, fuel, threshold):
        """Hypothesis: random fuel x random (low) OSR threshold, so
        entries land at arbitrary loop trip counts — values, traps and
        executed counts agree three ways on both machines."""
        bytecode, _ = emit_module(lower_checked(self.BRANCHY_LOOP))
        outcomes = {}
        for engine in ENGINES:
            vm = VM(bytecode, engine=engine, fuel=fuel,
                    osr=True, osr_threshold=threshold)
            try:
                outcomes[engine] = ("ok", repr(vm.call("f", [n])),
                                    vm.instructions_executed)
            except TrapError as exc:
                outcomes[engine] = ("trap", str(exc),
                                    vm.instructions_executed)
        assert_engines_agree(outcomes,
                             f"VM n={n} fuel={fuel} thr={threshold}")
        artifact = offline_compile(self.BRANCHY_LOOP)
        compiled = deploy(artifact, X86, "split")
        sim_outcomes = {}
        for engine in ENGINES:
            sim = Simulator(compiled, Memory(), engine=engine,
                            fuel=fuel, osr=True, osr_threshold=threshold)
            try:
                result = sim.run("f", [n])
                sim_outcomes[engine] = ("ok", repr(result.value),
                                        result.cycles,
                                        result.instructions,
                                        sim._executed)
            except TrapError as exc:
                sim_outcomes[engine] = ("trap", str(exc),
                                        sim._executed)
        assert_engines_agree(sim_outcomes,
                             f"sim n={n} fuel={fuel} thr={threshold}")

    # -- deopt re-entry -----------------------------------------------------

    def test_vm_deopt_reentry_at_hot_site(self, monkeypatch):
        """Force every non-header block untranslatable in tier-2: each
        entered iteration deopts at the first interior leader, counting
        continues, and the hot header re-enters ``_t2`` — the
        ``deopt_reentries`` counter must fire and parity must hold."""
        from repro.engine import backedge_targets, fuel_blocks
        from repro.vm import threaded

        bytecode, _ = emit_module(lower_checked(self.BRANCHY_LOOP))
        code = bytecode.functions["f"].code
        keep = backedge_targets(code, fuel_blocks(code))
        assert keep, "test program must have a loop header"
        real = threaded._gen_block_lines

        def failing(code_, leader, length, frame_offsets, env,
                    binding=None, **kwargs):
            if kwargs.get("tier2") and leader not in keep:
                raise RuntimeError("forced untranslatable (test)")
            return real(code_, leader, length, frame_offsets, env,
                        binding, **kwargs)

        monkeypatch.setattr(threaded, "_gen_block_lines", failing)
        want = VM(bytecode, engine=REFERENCE)
        want_value = want.call("f", [200])
        vm = VM(bytecode, engine=TIER2, osr=True, osr_threshold=4)
        assert vm.call("f", [200]) == want_value
        assert vm.instructions_executed == want.instructions_executed
        stats = vm.tiering_stats()
        assert stats["osr_entries"] >= 2
        assert stats["deopt_reentries"] >= 1, \
            "a hot deopt site must re-enter tier-2"

    def test_sim_deopt_reentry_at_hot_site(self, monkeypatch):
        from repro.engine import backedge_targets, fuel_blocks
        from repro.targets import dispatch

        artifact = offline_compile(self.BRANCHY_LOOP)
        compiled = deploy(artifact, X86, "split")
        code = compiled.functions["f"].code
        keep = backedge_targets(code, fuel_blocks(code))
        assert keep, "test program must have a loop header"
        real = dispatch._gen_block_lines

        def failing(name, code_, leader, length, env, written_at_entry,
                    binding=None, **kwargs):
            if kwargs.get("tier2") and leader not in keep:
                raise RuntimeError("forced untranslatable (test)")
            return real(name, code_, leader, length, env,
                        written_at_entry, binding, **kwargs)

        monkeypatch.setattr(dispatch, "_gen_block_lines", failing)
        want = Simulator(compiled, Memory(),
                         engine=REFERENCE).run("f", [200])
        sim = Simulator(compiled, Memory(), engine=TIER2,
                        osr=True, osr_threshold=4)
        got = sim.run("f", [200])
        assert (got.value, got.instructions, got.cycles) == \
            (want.value, want.instructions, want.cycles)
        stats = sim.tiering_stats()
        assert stats["osr_entries"] >= 2
        assert stats["deopt_reentries"] >= 1

    def test_vm_declined_entry_is_retired(self):
        """A ``_t2`` that declines the snapshot (returns the entry pc
        untouched) must be asked at most once per leader per call: the
        counter is parked, the call finishes on the block tier, and
        nothing is counted as an entry."""
        bytecode, _ = emit_module(lower_checked(self.LONG_LOOP))
        want = VM(bytecode, engine=REFERENCE).call("f", [1_000])
        vm = VM(bytecode, engine=FAST, osr=True, osr_threshold=8)
        pre = vm._predecode(bytecode.functions["f"])
        attempts = []

        def declining(s, lo, ar, fb, mem, vm_, pc=0):
            attempts.append(pc)
            return pc                      # decline: state untouched

        pre._tier2 = declining
        pre._tier2_args = (None, None)
        assert vm.call("f", [1_000]) == want
        assert vm.tiering_stats()["osr_entries"] == 0
        leaders = set(pre.osr_leaders)
        assert attempts and set(attempts) <= leaders
        assert len(attempts) == len(set(attempts)), \
            "a declined leader must be retired for the rest of the call"

    # -- the JIT-level opt-out and its cache identity -----------------------

    def test_jit_osr_hint_opt_out(self):
        from repro.flows import Flow
        from repro.jit import JITOptions

        artifact = offline_compile(self.LONG_LOOP)
        vetoed = deploy(artifact, X86,
                        Flow("osr-off", jit=JITOptions(osr=False)))
        assert not any(f.osr_hint for f in vetoed.functions.values())
        want = Simulator(vetoed, Memory(),
                         engine=REFERENCE).run("f", [1_000])
        sim = Simulator(vetoed, Memory(), engine=FAST, osr=True,
                        osr_threshold=8)
        got = sim.run("f", [1_000])
        assert (got.value, got.instructions) == (want.value,
                                                 want.instructions)
        assert sim.tiering_stats()["osr_entries"] == 0
        pre = vetoed.functions["f"]._predecode_cache[2]
        assert not pre.osr_leaders

    def test_osr_hint_rides_the_content_token(self):
        """Flipping ``osr_hint`` in place must invalidate the machine
        predecode — the entry-point set is baked into the payload."""
        from repro.targets.dispatch import predecode_machine

        artifact = offline_compile(self.LONG_LOOP)
        compiled = deploy(artifact, X86, "split")
        func = compiled.functions["f"]
        with_osr = predecode_machine(func, compiled)
        assert with_osr.osr_leaders
        func.osr_hint = False
        without = predecode_machine(func, compiled)
        assert without is not with_osr
        assert not without.osr_leaders

    # -- warming: tier-2 is never built in-request --------------------------

    def test_warm_bytecode_module_prebuilds_osr_tier2(self):
        from repro.vm.threaded import (
            reset_tier2_build_stats, tier2_build_stats,
            warm_bytecode_module,
        )

        bytecode, _ = emit_module(lower_checked(self.LONG_LOOP))
        reset_tier2_build_stats()
        warm_bytecode_module(bytecode)
        warmed = tier2_build_stats()
        assert warmed["warm"] >= 1, \
            "an OSR candidate must be translated by the warm hook"
        vm = VM(bytecode, engine=FAST, osr=True, osr_threshold=8)
        want = VM(bytecode, engine=REFERENCE).call("f", [1_000])
        assert vm.call("f", [1_000]) == want
        assert vm.tiering_stats()["osr_entries"] >= 1
        assert tier2_build_stats()["request"] == warmed["request"], \
            "a warmed module must never build tier-2 in-request"

    def test_warm_module_prebuilds_osr_tier2(self):
        from repro.targets import warm_module
        from repro.targets.dispatch import (
            reset_tier2_build_stats, tier2_build_stats,
        )

        artifact = offline_compile(self.LONG_LOOP)
        compiled = deploy(artifact, X86, "split")
        reset_tier2_build_stats()
        warm_module(compiled)
        warmed = tier2_build_stats()
        assert warmed["warm"] >= 1
        sim = Simulator(compiled, Memory(), engine=FAST,
                        osr=True, osr_threshold=8)
        want = Simulator(compiled, Memory(),
                         engine=REFERENCE).run("f", [1_000])
        got = sim.run("f", [1_000])
        assert got.value == want.value
        assert sim.tiering_stats()["osr_entries"] >= 1
        assert tier2_build_stats()["request"] == warmed["request"]
