"""The dataflow-analysis plane: solver, facts tables, caching, the
tier-2/OSR consumers and the deploy-time admission gate.

These tests pin the plane's contracts rather than re-proving engine
semantics (the three-way differential suite owns that): the worklist
solvers converge to the expected fixpoints on hand-built graphs, facts
tables are content-addressed and picklable, both tier-2 builders
record facts provenance, OSR guard elision actually fires (and the
``PVI_OSR_GUARDS=1`` escape hatch preserves observations exactly), and
the service refuses unverifiable artifacts while surfacing warnings.
"""

from __future__ import annotations

import pickle

import pytest

from repro.analysis import (
    AdmissionError, BlockCFG, FactsTable, bytecode_facts, check_admission,
    lint_bytecode_module, machine_facts, module_facts, solve_backward,
    solve_forward,
)
from repro.bytecode.opcodes import BCInstr
from repro.core import deploy, offline_compile
from repro.engine import OSR_GUARDS_ENV
from repro.semantics import Memory
from repro.service import CompilationService
from repro.targets import Simulator, X86
from repro.targets import dispatch
from repro.vm import VM
from repro.vm import threaded
from repro.workloads import ALL_KERNELS

N = 64
SAXPY = ALL_KERNELS["saxpy_fp"]


def _fresh_artifact(kernel=SAXPY, name="mod"):
    """A private artifact per test: facts/predecode caches live on the
    function objects, so sharing one artifact would leak tier-2 builds
    (and env-dependent guard decisions) across tests."""
    return offline_compile(kernel.source, name)


def _vm_observation(bytecode, kernel, engine="tier2"):
    memory = Memory(1 << 21)
    run = kernel.prepare(memory, N)
    vm = VM(bytecode, memory=memory, engine=engine)
    value = vm.call(kernel.entry, run.args)
    outputs = [memory.read_array(elem_ty, addr, count)
               for elem_ty, addr, count in run.outputs]
    return repr(value), tuple(repr(o) for o in outputs), \
        vm.instructions_executed


# ---------------------------------------------------------------------------
# worklist solvers
# ---------------------------------------------------------------------------

class TestSolvers:
    def _diamond(self):
        # 0: brif -> 4 | fall 2 ; 2: br 6 ; 4: fall 6 ; 6: ret
        code = [
            BCInstr("const", "i32", 1), BCInstr("brif", None, 4),
            BCInstr("const", "i32", 0), BCInstr("br", None, 6),
            BCInstr("const", "i32", 0), BCInstr("stloc", None, 0),
            BCInstr("ret", None, None),
        ]
        return code, BlockCFG(code)

    def test_cfg_shape(self):
        code, cfg = self._diamond()
        assert set(cfg.blocks) == {0, 2, 4, 6}
        assert sorted(cfg.successors[0]) == [2, 4]
        assert cfg.successors[6] == []
        assert sorted(cfg.predecessors[6]) == [2, 4]
        assert cfg.reachable() == frozenset({0, 2, 4, 6})

    def test_forward_must_meet_is_path_intersection(self):
        code, cfg = self._diamond()

        def transfer(leader, fact):
            # each arm "defines" its own leader id; entry defines 0
            return fact | {leader}

        def join(old, new):
            merged = old & new
            return merged, merged != old

        out = solve_forward(cfg, frozenset(), transfer, join)
        # both arms reach 6, so only facts common to both paths survive
        assert out[6] == frozenset({0})
        assert out[2] == frozenset({0})
        assert out[4] == frozenset({0})

    def test_backward_may_join_is_path_union(self):
        code, cfg = self._diamond()

        def transfer(leader, fact):
            return fact | {leader}

        def join(old, new):
            merged = old | new
            return merged, merged != old

        out = solve_backward(cfg, frozenset(), transfer, join)
        # entry sees everything live-out anywhere downstream
        assert out[0] >= frozenset({2, 4, 6})


# ---------------------------------------------------------------------------
# facts tables: content addressing, pickling
# ---------------------------------------------------------------------------

class TestFactsTable:
    def test_cache_hits_until_code_changes(self):
        func = _fresh_artifact().bytecode.functions[SAXPY.entry]
        facts1, fresh1 = bytecode_facts(func)
        facts2, fresh2 = bytecode_facts(func)
        assert fresh1 and not fresh2
        assert facts2 is facts1
        # in-place mutation changes the content token: cache misses
        func.code.append(BCInstr("ret", None, None))
        facts3, fresh3 = bytecode_facts(func)
        assert fresh3
        assert facts3 is not facts1

    def test_saxpy_facts_prove_what_tier2_needs(self):
        facts, _ = bytecode_facts(
            _fresh_artifact().bytecode.functions[SAXPY.entry])
        assert facts is not None and facts.kind == "bytecode"
        # the vectorized loop carries lane-typed locals and accesses
        assert facts.lane_locals, "vectorized saxpy must prove lanes"
        assert facts.access_widths
        assert facts.reachable <= frozenset(facts.blocks)

    def test_module_facts_pickle_roundtrip(self):
        table = module_facts(_fresh_artifact().bytecode)
        clone = pickle.loads(pickle.dumps(table))
        assert isinstance(clone, FactsTable)
        assert set(clone.functions) == set(table.functions)
        for name, facts in table.functions.items():
            other = clone.get(name)
            assert other.tuple_locals == facts.tuple_locals
            assert other.lane_locals == facts.lane_locals
            assert other.access_widths == facts.access_widths
            assert other.blocks == facts.blocks

    def test_function_with_facts_cache_survives_pickling(self):
        # the ProcessExecutor pickles artifacts whole; a populated
        # facts cache must not break that (facts are pure data)
        func = _fresh_artifact().bytecode.functions[SAXPY.entry]
        bytecode_facts(func)
        clone = pickle.loads(pickle.dumps(func))
        facts, fresh = bytecode_facts(clone)
        assert facts is not None

    def test_machine_facts_written_at_entry(self):
        compiled = deploy(_fresh_artifact(), X86, flow="split")
        func = compiled.functions[SAXPY.entry]
        facts, fresh = machine_facts(func)
        assert fresh and facts is not None and facts.kind == "machine"
        assert facts.param_regs
        for leader, written in facts.written_at_entry.items():
            assert facts.param_regs <= written


# ---------------------------------------------------------------------------
# tier-2 consumers: provenance counters and guard elision
# ---------------------------------------------------------------------------

class TestTier2Consumers:
    def test_vm_warm_hook_prepays_facts(self):
        artifact = _fresh_artifact()
        threaded.reset_tier2_build_stats()
        threaded.warm_bytecode_module(artifact.bytecode)
        stats = threaded.tier2_build_stats()
        assert stats["warm"] > 0 and stats["facts_warm"] > 0
        assert stats["request"] == 0 and stats["facts_request"] == 0
        # warmed builds elide OSR lane guards by default
        assert stats["guards_elided"] > 0
        assert stats["guards_kept"] == 0
        # a serving call after warming costs no request-path build,
        # and re-running facts is a cache hit (no new provenance)
        _vm_observation(artifact.bytecode, SAXPY)
        after = threaded.tier2_build_stats()
        assert after["request"] == 0 and after["facts_request"] == 0

    def test_sim_warm_hook_prepays_facts_and_elides_guards(self):
        compiled = deploy(_fresh_artifact(), X86, flow="split")
        dispatch.reset_tier2_build_stats()
        dispatch.warm_module(compiled)
        stats = dispatch.tier2_build_stats()
        assert stats["warm"] > 0 and stats["facts_warm"] > 0
        assert stats["facts_request"] == 0
        assert stats["guards_elided"] > 0
        assert stats["guards_kept"] == 0

    def test_osr_guard_env_keeps_guards_with_identical_observation(
            self, monkeypatch):
        baseline = _vm_observation(_fresh_artifact().bytecode, SAXPY)
        monkeypatch.setenv(OSR_GUARDS_ENV, "1")
        artifact = _fresh_artifact()
        threaded.reset_tier2_build_stats()
        guarded = _vm_observation(artifact.bytecode, SAXPY)
        stats = threaded.tier2_build_stats()
        assert stats["guards_kept"] > 0
        assert stats["guards_elided"] == 0
        assert guarded == baseline

    def test_sim_osr_guard_env_parity(self, monkeypatch):
        def observe():
            compiled = deploy(_fresh_artifact(), X86, flow="split")
            memory = Memory(1 << 21)
            run = SAXPY.prepare(memory, N)
            result = Simulator(compiled, memory, engine="tier2").run(
                SAXPY.entry, run.args)
            return repr(result.value), result.instructions, result.cycles

        baseline = observe()
        monkeypatch.setenv(OSR_GUARDS_ENV, "1")
        dispatch.reset_tier2_build_stats()
        guarded = observe()
        stats = dispatch.tier2_build_stats()
        assert stats["guards_kept"] > 0 and stats["guards_elided"] == 0
        assert guarded == baseline


# ---------------------------------------------------------------------------
# the admission gate
# ---------------------------------------------------------------------------

def _dead_block_artifact():
    """A verifiable artifact with an unreachable tail block (warn)."""
    artifact = _fresh_artifact(name="dead_tail")
    func = artifact.bytecode.functions[SAXPY.entry]
    func.code.append(BCInstr("const", "i32", 0))
    func.code.append(BCInstr("ret", None, None))
    return artifact


def _unverifiable_artifact():
    """Stack underflow at pc 0: the verifier rejects the module."""
    artifact = _fresh_artifact(name="broken")
    artifact.bytecode.functions[SAXPY.entry].code.insert(
        0, BCInstr("pop", None, None))
    return artifact


class TestAdmissionGate:
    def test_clean_artifact_passes_with_no_findings(self):
        service = CompilationService(executor="inline")
        try:
            service.deploy(_fresh_artifact(), "x86")
            stats = service.stats()
            assert stats.lint_rejections == 0
            assert stats.lint_findings == []
        finally:
            service.shutdown()

    def test_warn_findings_surface_once_per_artifact(self):
        service = CompilationService(executor="inline")
        try:
            artifact = _dead_block_artifact()
            service.deploy(artifact, "x86")
            service.deploy(artifact, "sparc")
            stats = service.stats()
            assert stats.lint_rejections == 0
            codes = [f["code"] for f in stats.lint_findings]
            assert codes.count("dead-block") == 1
            assert stats.as_dict()["lint"]["findings"] == \
                stats.lint_findings
        finally:
            service.shutdown()

    def test_error_findings_reject_deployment(self):
        service = CompilationService(executor="inline")
        try:
            artifact = _unverifiable_artifact()
            with pytest.raises(AdmissionError) as info:
                service.deploy(artifact, "x86")
            assert any(f.severity == "error" for f in info.value.findings)
            assert service.stats().lint_rejections == 1
        finally:
            service.shutdown()

    def test_lint_false_disables_the_gate(self):
        service = CompilationService(executor="inline", lint=False)
        try:
            # deploy itself still works: the JIT does not need the
            # verifier, so an unverifiable module only fails if its
            # lowering is malformed too — use the warn-only artifact
            service.deploy(_dead_block_artifact(), "x86")
            stats = service.stats()
            assert stats.lint_findings == []
            assert stats.lint_rejections == 0
        finally:
            service.shutdown()

    def test_check_admission_direct(self):
        findings = check_admission(_dead_block_artifact())
        assert any(f.code == "dead-block" and f.severity == "warn"
                   for f in findings)
        with pytest.raises(AdmissionError):
            check_admission(_unverifiable_artifact())


# ---------------------------------------------------------------------------
# the lint surface itself
# ---------------------------------------------------------------------------

class TestLintFindings:
    def test_unverifiable_module_gets_single_verify_error(self):
        findings = lint_bytecode_module(
            _unverifiable_artifact().bytecode)
        assert len(findings) == 1
        assert findings[0].severity == "error"
        assert findings[0].code == "verify"

    def test_workload_kernels_lint_clean_of_errors(self):
        for name in sorted(ALL_KERNELS):
            artifact = offline_compile(ALL_KERNELS[name].source, name)
            findings = lint_bytecode_module(artifact.bytecode)
            errors = [f for f in findings if f.severity == "error"]
            assert not errors, f"{name}: {errors}"

    def test_cli_clean_source_exits_zero(self, tmp_path, capsys):
        from repro.analysis.cli import main
        path = tmp_path / "ok.pvi"
        path.write_text(SAXPY.source)
        assert main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "pvi-lint:" in out

    def test_cli_compile_failure_exits_two(self, tmp_path, capsys):
        from repro.analysis.cli import main
        path = tmp_path / "bad.pvi"
        path.write_text("void f( {")
        assert main([str(path)]) == 2
        assert "compile" in capsys.readouterr().out
