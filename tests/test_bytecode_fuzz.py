"""Byte-level fuzzing of the module decoder, verifier and lint gate.

The admission pipeline must be a total function over arbitrary bytes:
a hypothesis-mutated encoding is either rejected *structurally* (the
decoder raises one of its documented rejection errors), rejected by
the verifier/analysis gate (error-severity findings), or it decodes
into a module every engine executes with at most a ``TrapError`` —
never an uncontrolled Python exception, and never an engine
disagreement.  The seed corpus is the bundled workload kernels, so
mutations start from realistic, vectorized, multi-function modules.
"""

from __future__ import annotations

import struct

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.lint import lint_bytecode_module
from repro.bytecode.encode import decode_module, encode_module
from repro.core import offline_compile
from repro.engine import FAST, REFERENCE, TIER2
from repro.semantics import Memory, TrapError
from repro.vm import VM
from repro.workloads import ALL_KERNELS

ENGINES = (FAST, TIER2, REFERENCE)
FUEL = 200
MEMORY_BYTES = 1 << 16

#: the decoder's documented rejection surface — anything else leaking
#: out of ``decode_module`` on corrupt bytes is a bug this test catches
DECODE_REJECTIONS = (ValueError, KeyError, IndexError, OverflowError,
                     struct.error, UnicodeDecodeError)


def _corpus():
    encoded = []
    for name in sorted(ALL_KERNELS)[:4]:
        kernel = ALL_KERNELS[name]
        artifact = offline_compile(kernel.source, name)
        encoded.append(encode_module(artifact.bytecode))
    return encoded


CORPUS = _corpus()


def _default_args(func):
    """Zero-ish arguments per parameter tag; ``None`` skips vector
    parameters (no scalar spelling to synthesize)."""
    args = []
    for tag in func.param_types:
        if tag.startswith("v128:"):
            return None
        args.append(0.0 if tag in ("f32", "f64") else 0)
    return args


def _observe(module, func, engine):
    memory = Memory(MEMORY_BYTES)
    vm = VM(module, memory=memory, engine=engine, fuel=FUEL)
    try:
        value = vm.call(func.name, _default_args(func))
        return ("ok", repr(value), vm.instructions_executed)
    except TrapError as exc:
        return ("trap", str(exc), vm.instructions_executed)


@given(
    index=st.integers(min_value=0, max_value=len(CORPUS) - 1),
    edits=st.lists(
        st.tuples(st.integers(min_value=0, max_value=1 << 30),
                  st.integers(min_value=0, max_value=255)),
        min_size=1, max_size=8),
)
@settings(derandomize=True, deadline=None, max_examples=150)
def test_mutated_modules_rejected_or_run_with_trap_parity(index, edits):
    raw = bytearray(CORPUS[index])
    for offset, byte in edits:
        raw[offset % len(raw)] = byte

    try:
        module = decode_module(bytes(raw))
    except DECODE_REJECTIONS:
        return                          # structurally rejected: fine

    findings = lint_bytecode_module(module)
    if any(f.severity == "error" for f in findings):
        return                          # gate rejected: fine

    # Admitted: every function must run on all three engines with at
    # most a trap, and the engines must observe the same thing.
    for func in module.functions.values():
        if _default_args(func) is None:
            continue
        outcomes = {engine: _observe(module, func, engine)
                    for engine in ENGINES}
        oracle = outcomes[REFERENCE]
        for engine, observed in outcomes.items():
            assert observed == oracle, (
                f"{engine} diverges from reference on mutated "
                f"{func.name}:\n  {engine}: {observed}\n"
                f"  reference: {oracle}")


def test_unmutated_corpus_is_admitted():
    """Sanity: the seed corpus itself decodes clean and gate-passes
    (so the fuzz property above isn't vacuously testing rejection)."""
    for raw in CORPUS:
        module = decode_module(raw)
        findings = lint_bytecode_module(module)
        assert not any(f.severity == "error" for f in findings)
