"""Semantic analysis unit tests."""

import pytest

from repro.lang import ast, parse_and_check
from repro.lang import types as ty
from repro.lang.errors import SemanticError


def check_ok(source):
    return parse_and_check(source)


def check_fails(source):
    with pytest.raises(SemanticError) as exc:
        parse_and_check(source)
    return exc.value


def ret_expr(source):
    """The (typed) expression of the first return in the first function."""
    program = parse_and_check(source)
    for node in ast.walk(program.funcs[0]):
        if isinstance(node, ast.Return):
            return node.value
    raise AssertionError("no return found")


class TestTyping:
    def test_int_plus_int_is_int(self):
        expr = ret_expr("int f(int a, int b) { return a + b; }")
        assert expr.ty == ty.I32

    def test_char_promotes_to_int(self):
        expr = ret_expr("int f(char a, char b) { return a + b; }")
        assert expr.ty == ty.I32
        # both operands must have been cast up
        assert isinstance(expr.left, ast.Cast)
        assert expr.left.ty == ty.I32

    def test_mixed_int_float_promotes_to_float(self):
        expr = ret_expr("float f(int a, float b) { return a + b; }")
        assert expr.ty == ty.F32
        assert isinstance(expr.left, ast.Cast)

    def test_float_plus_double_is_double(self):
        src = "double f(float a, double b) { return a + b; }"
        assert ret_expr(src).ty == ty.F64

    def test_unsigned_wins_at_equal_width(self):
        expr = ret_expr("unsigned f(int a, unsigned b) { return a + b; }")
        assert expr.ty == ty.U32

    def test_comparison_yields_int(self):
        expr = ret_expr("int f(float a, float b) { return a < b; }")
        assert expr.ty == ty.I32

    def test_pointer_indexing_type(self):
        expr = ret_expr("short f(short *p) { return p[3]; }")
        assert expr.ty == ty.I16

    def test_index_coerced_to_i64(self):
        src = "int f(int *p, int i) { return p[i]; }"
        expr = ret_expr(src)
        assert isinstance(expr.index, ast.Cast)
        assert expr.index.ty == ty.I64

    def test_addrof_type(self):
        expr = ret_expr("int *f(int x) { return &x; }")
        assert expr.ty == ty.PointerType(ty.I32)

    def test_pointer_difference_is_i64(self):
        expr = ret_expr("long f(int *a, int *b) { return a - b; }")
        assert expr.ty == ty.I64

    def test_pointer_plus_int_keeps_pointer_type(self):
        expr = ret_expr("int *f(int *p, int i) { return p + i; }")
        assert expr.ty == ty.PointerType(ty.I32)

    def test_float_literal_is_double_by_default(self):
        expr = ret_expr("double f(void) { return 1.5; }")
        assert expr.ty == ty.F64

    def test_float_literal_with_suffix_is_single(self):
        expr = ret_expr("float f(void) { return 1.5f; }")
        assert expr.ty == ty.F32

    def test_return_value_coerced(self):
        expr = ret_expr("char f(int x) { return x; }")
        assert isinstance(expr, ast.Cast)
        assert expr.ty == ty.I8

    def test_call_arguments_coerced(self):
        program = check_ok("""
            float g(float x) { return x; }
            float f(int a) { return g(a); }
        """)
        call = program.funcs[1].body.stmts[0].value
        assert isinstance(call.args[0], ast.Cast)
        assert call.args[0].ty == ty.F32

    def test_compound_assign_records_compute_type(self):
        program = check_ok("int f(char c, int x) { c += x; return c; }")
        assign = program.funcs[0].body.stmts[0].expr
        assert assign.compute_ty == ty.I32

    def test_shadowing_in_nested_scope(self):
        program = check_ok("""
            int f(int x) {
                int y = x;
                { int y = 2 * x; y = y + 1; }
                return y;
            }""")
        outer = program.funcs[0].body.stmts[0]
        inner = program.funcs[0].body.stmts[1].stmts[0]
        assert outer.uid != inner.uid

    def test_ident_links_to_declaration(self):
        program = check_ok("int f(int x) { return x; }")
        ret = program.funcs[0].body.stmts[0]
        assert ret.value.decl is program.funcs[0].params[0]

    def test_sizeof_is_u64(self):
        assert ret_expr(
            "unsigned long f(void) { return sizeof(int); }").ty == ty.U64

    def test_conditional_common_type(self):
        src = "double f(int c, float a, double b) { return c ? a : b; }"
        assert ret_expr(src).ty == ty.F64


class TestRejections:
    @pytest.mark.parametrize("source, fragment", [
        ("int f(void) { return x; }", "undeclared"),
        ("int f(void) { g(); return 0; }", "undeclared function"),
        ("int f(int x) { int x = 1; int x = 2; return x; }", "redeclaration"),
        ("int f(void) { return 1; } int f(void) { return 2; }",
         "redefinition"),
        ("int f(int a); int f(float b) { return 0; }", "conflicting"),
        ("void f(float x) { x % 2; }", "integers"),
        ("void f(float x) { x & 1; }", "integers"),
        ("void f(int *p, float *q) { p - q; }", "distinct pointer"),
        ("void f(int *p, float f2) { p[f2]; }", "index"),
        ("void f(int x) { x[0]; }", "cannot index"),
        ("void f(int x) { *x; }", "dereference"),
        ("void f(void) { &3; }", "address of an rvalue"),
        ("void f(int x) { 3 = x; }", "not an lvalue"),
        ("void f(int a) { break; }", "break outside loop"),
        ("void f(int a) { continue; }", "continue outside loop"),
        ("int f(void) { return; }", "must return a value"),
        ("void f(void) { return 3; }", "cannot return a value"),
        ("void f(int n) { int a[4]; a = 0; }", "array"),
        ("void f(int g) { g(3); }", "undeclared function"),
        ("int f(int a) { return f(1, 2); }", "arguments"),
        ("void f(void a) {}", "void"),
        ("void f(void) { void x; }", "void"),
        ("void f(int *p, float f2) { p + f2 ? 0 : 1; }", "invalid operands"),
    ])
    def test_rejects(self, source, fragment):
        error = check_fails(source)
        assert fragment.lower() in str(error).lower()

    def test_pointer_mismatch_assignment_rejected(self):
        check_fails("void f(int *p, float *q) { p = q; }")

    def test_void_call_in_expression_rejected(self):
        check_fails("""
            void g(void) {}
            int f(void) { return g() + 1; }
        """)
