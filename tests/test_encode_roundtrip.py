"""Property-based roundtrip tests for the binary PVI encoding.

The service's persistence path stores artifacts as encoded bytecode,
so ``decode(encode(m))`` must be the identity and the encoding must be
canonical (re-encoding a decoded module reproduces the exact bytes).
Randomized inputs come from seeded ``random`` generators — hypothesis
without the dependency.
"""

from __future__ import annotations

import random

import pytest

from repro.bytecode.encode import decode_module, encode_module
from repro.bytecode.module import (
    BytecodeFunction, BytecodeModule, FrameSlotInfo,
)
from repro.bytecode.opcodes import BCInstr, BIN_OPS, CMP_PREDS
from repro.bytecode.varint import (
    read_sint, read_str, read_uint, write_sint, write_str, write_uint,
)
from repro.core import offline_compile
from repro.workloads import ALL_KERNELS

SCALAR_TAGS = ("i8", "u8", "i16", "u16", "i32", "u32", "i64", "u64",
               "f32", "f64")
INT_TAGS = ("i8", "u8", "i16", "u16", "i32", "u32", "i64", "u64")


# ---------------------------------------------------------------------------
# varints
# ---------------------------------------------------------------------------

def _uint_samples(rng: random.Random, count: int):
    for _ in range(count):
        bits = rng.randrange(1, 300)
        yield rng.getrandbits(bits)


class TestVarint:
    def test_uint_roundtrip_randomized(self):
        rng = random.Random(1)
        for value in _uint_samples(rng, 500):
            buf = bytearray()
            write_uint(buf, value)
            got, pos = read_uint(bytes(buf), 0)
            assert got == value
            assert pos == len(buf)

    def test_sint_roundtrip_randomized(self):
        rng = random.Random(2)
        for magnitude in _uint_samples(rng, 500):
            for value in (magnitude, -magnitude):
                buf = bytearray()
                write_sint(buf, value)
                got, pos = read_sint(bytes(buf), 0)
                assert got == value, f"zig-zag broke at {value}"
                assert pos == len(buf)

    @pytest.mark.parametrize("value", [
        0, -1, 1, 63, -64,
        2**63 - 1, -2**63, 2**63, -2**63 - 1,
        # regression: the old zig-zag hard-coded `value >> 127` and
        # silently corrupted everything at and past the 128-bit line
        2**126, -2**126, 2**127 - 1, -2**127,
        2**127, -2**127 - 1, 2**127 + 1,
        2**128, -2**128, 2**200 + 12345, -(2**200 + 12345),
    ])
    def test_sint_boundary_values(self, value):
        buf = bytearray()
        write_sint(buf, value)
        got, _ = read_sint(bytes(buf), 0)
        assert got == value

    def test_zigzag_interleaving_is_dense(self):
        """0,-1,1,-2,2,... must map to 0,1,2,3,4,... exactly."""
        encoded = []
        for value in (0, -1, 1, -2, 2, -3, 3):
            buf = bytearray()
            write_sint(buf, value)
            encoded.append(read_uint(bytes(buf), 0)[0])
        assert encoded == [0, 1, 2, 3, 4, 5, 6]

    def test_sequential_values_share_a_buffer(self):
        rng = random.Random(3)
        values = [rng.getrandbits(rng.randrange(1, 200)) *
                  rng.choice((1, -1)) for _ in range(64)]
        buf = bytearray()
        for value in values:
            write_sint(buf, value)
        raw = bytes(buf)
        pos = 0
        for value in values:
            got, pos = read_sint(raw, pos)
            assert got == value
        assert pos == len(raw)

    def test_str_roundtrip_randomized(self):
        rng = random.Random(4)
        alphabet = "abcdefghijklmnop.:/é∂"
        for _ in range(100):
            text = "".join(rng.choice(alphabet)
                           for _ in range(rng.randrange(0, 40)))
            buf = bytearray()
            write_str(buf, text)
            got, pos = read_str(bytes(buf), 0)
            assert got == text
            assert pos == len(buf)


# ---------------------------------------------------------------------------
# random module generation
# ---------------------------------------------------------------------------

def _random_instr(rng: random.Random) -> BCInstr:
    choice = rng.randrange(9)
    if choice == 0:
        tag = rng.choice(INT_TAGS)
        magnitude = rng.getrandbits(rng.randrange(1, 160))
        return BCInstr("const", tag, magnitude * rng.choice((1, -1)))
    if choice == 1:
        return BCInstr("const", rng.choice(("f32", "f64")),
                       rng.uniform(-1e6, 1e6))
    if choice == 2:
        return BCInstr(rng.choice(("ldarg", "ldloc", "stloc", "frame",
                                   "br", "brif")), None,
                       rng.randrange(0, 1 << 20))
    if choice == 3:
        return BCInstr("cmp", rng.choice(SCALAR_TAGS),
                       rng.choice(CMP_PREDS))
    if choice == 4:
        tags = rng.sample(SCALAR_TAGS, 2)
        return BCInstr("cast", tags[0], tags[1])
    if choice == 5:
        return BCInstr("call", None, f"callee_{rng.randrange(100)}")
    if choice == 6:
        return BCInstr("vec.reduce", rng.choice(("u8", "i32", "f32")),
                       (rng.choice(("add", "max", "min")),
                        rng.choice(("i32", "u32", "f32"))))
    if choice == 7:
        return BCInstr(rng.choice(("load", "store")),
                       rng.choice(SCALAR_TAGS))
    return BCInstr(rng.choice(BIN_OPS), rng.choice(SCALAR_TAGS))


def _random_module(seed: int) -> BytecodeModule:
    rng = random.Random(seed)
    module = BytecodeModule(f"random_{seed}")
    for index in range(rng.randrange(1, 4)):
        params = [rng.choice(SCALAR_TAGS)
                  for _ in range(rng.randrange(0, 4))]
        ret = rng.choice((None,) + SCALAR_TAGS)
        locals_ = [rng.choice(SCALAR_TAGS)
                   for _ in range(rng.randrange(0, 5))]
        slots = [FrameSlotInfo(f"s{i}", rng.choice((4, 8, 16, 64)),
                               rng.choice((4, 8, 16)))
                 for i in range(rng.randrange(0, 3))]
        code = [_random_instr(rng)
                for _ in range(rng.randrange(1, 40))]
        module.add(BytecodeFunction(f"f{index}", params, ret, locals_,
                                    slots, code))
    return module


# ---------------------------------------------------------------------------
# module roundtrips
# ---------------------------------------------------------------------------

class TestModuleRoundtrip:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_module_reencodes_byte_identical(self, seed):
        module = _random_module(seed)
        raw = encode_module(module)
        decoded = decode_module(raw)
        assert encode_module(decoded) == raw

    @pytest.mark.parametrize("seed", range(10))
    def test_random_module_decodes_to_equal_structure(self, seed):
        module = _random_module(seed + 1000)
        decoded = decode_module(encode_module(module))
        assert decoded.name == module.name
        assert list(decoded.functions) == list(module.functions)
        for func in module:
            twin = decoded[func.name]
            assert twin.param_types == func.param_types
            assert twin.ret_type == func.ret_type
            assert twin.local_types == func.local_types
            assert twin.frame_slots == func.frame_slots
            assert [repr(i) for i in twin.code] == \
                [repr(i) for i in func.code]

    @pytest.mark.parametrize("kernel", sorted(ALL_KERNELS))
    def test_real_kernels_reencode_byte_identical(self, kernel):
        """Both flavours of every workload artifact, annotations and
        all — exactly what the cache's persistence path writes."""
        artifact = offline_compile(ALL_KERNELS[kernel].source, kernel)
        for flavour in (artifact.bytecode, artifact.scalar_bytecode):
            raw = encode_module(flavour)
            assert encode_module(decode_module(raw)) == raw
