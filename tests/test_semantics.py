"""Unit and property tests for the shared execution semantics."""

import math
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.lang import types as ty
from repro.semantics import (
    Memory, TrapError, eval_binop, eval_cast, eval_cmp, eval_unop,
    round_float, vec_binop, vec_reduce, vec_splat,
)

INTS = list(ty.INT_TYPES)


def int_values(int_ty):
    return st.integers(ty.int_min(int_ty), ty.int_max(int_ty))


class TestIntegerOps:
    def test_add_wraps(self):
        assert eval_binop("add", ty.I8, 127, 1) == -128
        assert eval_binop("add", ty.U8, 255, 1) == 0

    def test_div_truncates_toward_zero(self):
        assert eval_binop("div", ty.I32, 7, 2) == 3
        assert eval_binop("div", ty.I32, -7, 2) == -3
        assert eval_binop("div", ty.I32, 7, -2) == -3

    def test_rem_sign_follows_dividend(self):
        assert eval_binop("rem", ty.I32, 7, 3) == 1
        assert eval_binop("rem", ty.I32, -7, 3) == -1
        assert eval_binop("rem", ty.I32, 7, -3) == 1

    def test_div_by_zero_traps(self):
        with pytest.raises(TrapError):
            eval_binop("div", ty.I32, 1, 0)
        with pytest.raises(TrapError):
            eval_binop("rem", ty.U16, 1, 0)

    def test_arithmetic_vs_logical_shift(self):
        assert eval_binop("shr", ty.I32, -8, 1) == -4
        assert eval_binop("shr", ty.U32, ty.wrap_int(-8, ty.U32), 1) == \
            (2**32 - 8) >> 1

    def test_shift_amount_masked(self):
        assert eval_binop("shl", ty.I32, 1, 33) == 2     # 33 & 31 == 1

    def test_bitwise_on_negative_values(self):
        assert eval_binop("and", ty.I8, -1, 0x0F) == 15
        assert eval_binop("or", ty.I8, -128, 1) == -127
        assert eval_binop("xor", ty.I8, -1, -1) == 0

    def test_min_max(self):
        assert eval_binop("max", ty.I32, -5, 3) == 3
        assert eval_binop("min", ty.U8, 200, 100) == 100

    @given(st.sampled_from(INTS), st.data())
    def test_add_matches_modular_arithmetic(self, int_ty, data):
        a = data.draw(int_values(int_ty))
        b = data.draw(int_values(int_ty))
        got = eval_binop("add", int_ty, a, b)
        assert (got - (a + b)) % (1 << int_ty.bits) == 0

    @given(st.sampled_from(INTS), st.data())
    def test_sub_then_add_roundtrips(self, int_ty, data):
        a = data.draw(int_values(int_ty))
        b = data.draw(int_values(int_ty))
        diff = eval_binop("sub", int_ty, a, b)
        assert eval_binop("add", int_ty, diff, b) == a

    @given(st.sampled_from(INTS), st.data())
    def test_div_rem_reconstruct(self, int_ty, data):
        a = data.draw(int_values(int_ty))
        b = data.draw(int_values(int_ty).filter(lambda v: v != 0))
        q = eval_binop("div", int_ty, a, b)
        r = eval_binop("rem", int_ty, a, b)
        # q*b + r == a unless q overflowed (INT_MIN / -1).
        if not (int_ty.signed and a == ty.int_min(int_ty) and b == -1):
            assert q * b + r == a

    @given(st.sampled_from(INTS), st.data())
    def test_results_always_in_range(self, int_ty, data):
        a = data.draw(int_values(int_ty))
        b = data.draw(int_values(int_ty))
        for op in ("add", "sub", "mul", "and", "or", "xor", "min", "max"):
            result = eval_binop(op, int_ty, a, b)
            assert ty.int_min(int_ty) <= result <= ty.int_max(int_ty)


class TestFloatOps:
    def test_f32_rounding_applied(self):
        # 0.1 + 0.2 differs between f32 and f64 precision.
        f32 = eval_binop("add", ty.F32, round_float(0.1, ty.F32),
                         round_float(0.2, ty.F32))
        f64 = eval_binop("add", ty.F64, 0.1, 0.2)
        assert f32 != f64
        assert f32 == struct.unpack("<f", struct.pack("<f", f32))[0]

    def test_float_div_by_zero_gives_inf(self):
        assert math.isinf(eval_binop("div", ty.F64, 1.0, 0.0))
        assert math.isnan(eval_binop("div", ty.F64, 0.0, 0.0))

    def test_unary_neg(self):
        assert eval_unop("neg", ty.F64, 2.5) == -2.5
        assert eval_unop("neg", ty.I8, -128) == -128    # wraps

    def test_nan_comparisons_unordered(self):
        assert eval_cmp("lt", ty.F64, math.nan, 1.0) == 0
        assert eval_cmp("eq", ty.F64, math.nan, math.nan) == 0
        assert eval_cmp("ne", ty.F64, math.nan, math.nan) == 1


class TestComparisons:
    def test_unsigned_comparison_uses_bit_pattern(self):
        # -1 as u32 is 4294967295, which is > 1.
        assert eval_cmp("gt", ty.U32, -1, 1) == 1
        assert eval_cmp("gt", ty.I32, -1, 1) == 0

    @given(st.sampled_from(INTS), st.data())
    def test_trichotomy(self, int_ty, data):
        a = data.draw(int_values(int_ty))
        b = data.draw(int_values(int_ty))
        results = [eval_cmp("lt", int_ty, a, b),
                   eval_cmp("eq", int_ty, a, b),
                   eval_cmp("gt", int_ty, a, b)]
        assert sum(results) == 1

    @given(st.sampled_from(INTS), st.data())
    def test_le_is_lt_or_eq(self, int_ty, data):
        a = data.draw(int_values(int_ty))
        b = data.draw(int_values(int_ty))
        le = eval_cmp("le", int_ty, a, b)
        lt = eval_cmp("lt", int_ty, a, b)
        eq = eval_cmp("eq", int_ty, a, b)
        assert le == (1 if lt or eq else 0)


class TestCasts:
    def test_narrowing_wraps(self):
        assert eval_cast(300, ty.I32, ty.U8) == 44
        assert eval_cast(200, ty.I32, ty.I8) == -56

    def test_float_to_int_truncates(self):
        assert eval_cast(2.9, ty.F64, ty.I32) == 2
        assert eval_cast(-2.9, ty.F64, ty.I32) == -2

    def test_inf_nan_to_int_is_zero(self):
        assert eval_cast(math.inf, ty.F64, ty.I32) == 0
        assert eval_cast(math.nan, ty.F64, ty.I64) == 0

    def test_f64_to_f32_rounds(self):
        precise = 1.0000000001
        assert eval_cast(precise, ty.F64, ty.F32) == \
            struct.unpack("<f", struct.pack("<f", precise))[0]

    @given(st.sampled_from(INTS), st.sampled_from(INTS), st.data())
    def test_int_casts_stay_in_range(self, src_ty, dst_ty, data):
        value = data.draw(int_values(src_ty))
        result = eval_cast(value, src_ty, dst_ty)
        assert ty.int_min(dst_ty) <= result <= ty.int_max(dst_ty)


class TestMemory:
    def test_roundtrip_every_scalar_type(self):
        mem = Memory(4096)
        cases = [(ty.I8, -5), (ty.U8, 200), (ty.I16, -30000),
                 (ty.U16, 60000), (ty.I32, -2**31), (ty.U32, 2**32 - 1),
                 (ty.I64, -2**63), (ty.U64, 2**64 - 1),
                 (ty.F32, 1.5), (ty.F64, math.pi)]
        addr = 128
        for value_ty, value in cases:
            mem.store(value_ty, addr, value)
            assert mem.load(value_ty, addr) == value

    def test_little_endian_layout(self):
        mem = Memory(4096)
        mem.store(ty.U32, 128, 0x01020304)
        assert mem.load(ty.U8, 128) == 0x04
        assert mem.load(ty.U8, 131) == 0x01

    def test_null_access_traps(self):
        mem = Memory(4096)
        with pytest.raises(TrapError):
            mem.load(ty.I32, 0)
        with pytest.raises(TrapError):
            mem.store(ty.I8, 10, 1)

    def test_out_of_bounds_traps(self):
        mem = Memory(4096)
        with pytest.raises(TrapError):
            mem.load(ty.I64, 4090)

    def test_alloc_respects_alignment(self):
        mem = Memory(4096)
        mem.alloc(3)
        addr = mem.alloc(16, align=16)
        assert addr % 16 == 0

    def test_heap_stack_collision_traps(self):
        mem = Memory(1024)
        mem.push_frame(512)
        with pytest.raises(TrapError):
            mem.alloc(1024)

    def test_frame_push_pop(self):
        mem = Memory(4096)
        sp0 = mem.stack_ptr
        base = mem.push_frame(64)
        assert base < sp0
        mem.pop_frame(base, 64)
        assert mem.stack_ptr >= base + 64

    @given(st.integers(64, 4000), st.integers(-2**31, 2**31 - 1))
    def test_store_load_property(self, addr, value):
        mem = Memory(8192)
        mem.store(ty.I32, addr, value)
        assert mem.load(ty.I32, addr) == value


class TestVectors:
    def test_lanewise_add(self):
        assert vec_binop("add", ty.U8, [250, 1], [10, 2]) == [4, 3]

    def test_splat(self):
        assert vec_splat(7, 4) == [7, 7, 7, 7]

    def test_reduce_add_wraps_in_elem_type(self):
        assert vec_reduce("add", ty.U8, [200, 100]) == 44

    def test_reduce_max(self):
        assert vec_reduce("max", ty.I32, [3, -7, 11, 2]) == 11

    def test_lane_mismatch_traps(self):
        with pytest.raises(TrapError):
            vec_binop("add", ty.I32, [1, 2], [1])

    @given(st.lists(st.integers(0, 255), min_size=1, max_size=16))
    def test_reduce_add_matches_modular_sum(self, lanes):
        assert vec_reduce("add", ty.U8, lanes) == sum(lanes) % 256

    @given(st.lists(st.integers(-128, 127), min_size=1, max_size=16))
    def test_reduce_max_matches_python_max(self, lanes):
        assert vec_reduce("max", ty.I8, lanes) == max(lanes)
