"""The service API v2 surface: executor backends, the async facade,
request coalescing and failure accounting.

The redesign's contract is that *where* a compile runs (inline,
thread pool, worker processes) and *how* a caller waits (blocking or
``await``) are orthogonal to what gets compiled: every executor and
both facades must produce byte-for-byte identical images and modeled
numbers.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core import deploy
from repro.semantics import Memory
from repro.service import (
    AsyncCompilationService, CompilationService, CompileRequest,
    DeploymentPool, InlineExecutor, ProcessExecutor, ThreadExecutor,
    UnknownExecutorError, as_executor, executor_names,
)
from repro.targets import Simulator, X86
from repro.targets.catalog import TARGETS
from repro.workloads import TABLE1

SAXPY = TABLE1["saxpy_fp"].source
SUM_U8 = TABLE1["sum_u8"].source
EXECUTOR_NAMES = ("inline", "thread", "process")


def simulate(kernel_name: str, compiled, n: int = 48, seed: int = 7):
    kernel = TABLE1[kernel_name]
    memory = Memory(1 << 21)
    run = kernel.prepare(memory, n, seed)
    result = Simulator(compiled, memory).run(kernel.entry, run.args)
    outputs = [memory.read_array(t, addr, count)
               for t, addr, count in run.outputs]
    return (repr(result.value), [repr(o) for o in outputs],
            result.cycles, result.instructions)


def code_of(image):
    return [repr(inst) for f in image.functions.values()
            for inst in f.code]


# ---------------------------------------------------------------------------
# executor resolution
# ---------------------------------------------------------------------------

class TestExecutorResolution:
    def test_names(self):
        assert set(EXECUTOR_NAMES) <= set(executor_names())

    def test_default_is_thread(self):
        executor = as_executor(None)
        try:
            assert isinstance(executor, ThreadExecutor)
        finally:
            executor.shutdown()

    def test_instance_passes_through(self):
        executor = InlineExecutor()
        assert as_executor(executor) is executor

    def test_unknown_name_rejected_with_catalog(self):
        with pytest.raises(UnknownExecutorError) as err:
            as_executor("quantum")
        message = str(err.value)
        assert "quantum" in message
        for name in EXECUTOR_NAMES:
            assert name in message
        # unified ergonomics: both KeyError and ValueError callers work
        assert isinstance(err.value, KeyError)
        assert isinstance(err.value, ValueError)

    def test_pool_accepts_name_and_instance(self):
        pool = DeploymentPool(executor="inline")
        try:
            assert isinstance(pool.executor, InlineExecutor)
        finally:
            pool.shutdown()


# ---------------------------------------------------------------------------
# the three executors serve identical deployments
# ---------------------------------------------------------------------------

class TestExecutorEquivalence:
    @pytest.fixture(scope="class")
    def baseline(self):
        """Fresh serviceless JITs: the oracle every executor must hit."""
        svc = CompilationService(executor="inline")
        try:
            artifact = svc.artifact(SAXPY, "k")
        finally:
            svc.shutdown()
        return {
            target.name: deploy(artifact, target, "split")
            for target in TARGETS.values()}

    @pytest.mark.parametrize("executor_name", EXECUTOR_NAMES)
    def test_identical_images_and_modeled_numbers(self, executor_name,
                                                  baseline):
        svc = CompilationService(executor=executor_name)
        try:
            artifact = svc.artifact(SAXPY, "k")
            images = svc.deploy_many(artifact, list(TARGETS.values()),
                                     "split")
            assert sorted(images) == sorted(TARGETS)
            for name, image in images.items():
                reference = baseline[name]
                assert code_of(image) == code_of(reference)
                assert image.total_code_bytes == \
                    reference.total_code_bytes
                assert image.total_jit_work == reference.total_jit_work
                assert simulate("saxpy_fp", image) == \
                    simulate("saxpy_fp", reference)
            stats = svc.stats()
            assert stats.deploy_compiles == len(TARGETS)
            executor_stats = stats.deploy_executors[executor_name]
            assert executor_stats["submitted"] == len(TARGETS)
            assert executor_stats["failed"] == 0
        finally:
            svc.shutdown()

    @pytest.mark.parametrize("executor_name", EXECUTOR_NAMES)
    def test_memo_and_stats_behave_identically(self, executor_name):
        svc = CompilationService(executor=executor_name)
        try:
            artifact = svc.artifact(SUM_U8, "k")
            first = svc.deploy(artifact, X86, "split")
            assert svc.deploy(artifact, X86, "split") is first
            stats = svc.stats()
            assert stats.deploy_compiles == 1
            assert stats.deploy_memo_hits == 1
        finally:
            svc.shutdown()

    def test_process_executor_reuses_decoded_artifact(self):
        """Fan-out through worker processes: one artifact, many
        targets, every image correct (the worker-side artifact cache
        and the predecode re-warm path)."""
        svc = CompilationService(executor=ProcessExecutor(max_workers=1))
        try:
            artifact = svc.artifact(SAXPY, "k")
            images = svc.deploy_many(
                artifact, list(TARGETS.values()), "split")
            values = {simulate("saxpy_fp", image)[0]
                      for image in images.values()}
            assert len(values) == 1
        finally:
            svc.shutdown()

    def test_process_executor_warms_images_before_serving(self):
        """Images returned from worker processes are re-warmed —
        predecode plus tier-2 translation — *before* the future
        settles: the ``warmed`` stat counts them, and serving the
        image never builds tier-2 in-request."""
        from repro.targets.dispatch import (
            reset_tier2_build_stats, tier2_build_stats,
        )

        executor = ProcessExecutor(max_workers=1)
        svc = CompilationService(executor=executor)
        try:
            artifact = svc.artifact(SAXPY, "k")
            reset_tier2_build_stats()
            image = svc.deploy(artifact, X86, "split")
            assert executor.stats.warmed == 1
            assert executor.stats.as_dict()["warmed"] == 1
            warmed = tier2_build_stats()
            assert warmed["warm"] >= 1, \
                "saxpy has a loop header: the warm hook must " \
                "pre-translate the OSR candidate"
            simulate("saxpy_fp", image)
            assert tier2_build_stats()["request"] == \
                warmed["request"], \
                "a warmed image must never compile tier-2 in-request"
        finally:
            svc.shutdown()


# ---------------------------------------------------------------------------
# failure accounting (the fully_cached fix)
# ---------------------------------------------------------------------------

class TestFailureAccounting:
    def _flaky_service(self, fail_times: int):
        svc = CompilationService(executor="inline")
        original = svc.pool._compile
        calls = []

        def flaky(artifact, target, flow):
            calls.append(target.name)
            if len(calls) <= fail_times:
                raise MemoryError("transient JIT failure")
            return original(artifact, target, flow)

        svc.pool._compile = flaky
        return svc, calls

    def test_strict_request_still_raises(self):
        svc, _ = self._flaky_service(fail_times=1)
        try:
            with pytest.raises(MemoryError):
                svc.submit(CompileRequest(source=SAXPY, name="m",
                                          targets=[X86]))
        finally:
            svc.shutdown()

    def test_errored_target_is_never_fully_cached(self):
        svc, calls = self._flaky_service(fail_times=1)
        try:
            request = CompileRequest(source=SAXPY, name="m",
                                     targets=[X86],
                                     tolerate_failures=True)
            failed = svc.submit(request)
            assert failed.failed_targets == ["x86"]
            assert isinstance(failed.errors["x86"], MemoryError)
            assert not failed.deployments["x86"].ok
            # the satellite fix: an errored deployment must not
            # report fully cached, whatever the artifact cache said
            assert failed.artifact_cache_hit is False
            assert not failed.fully_cached
            again = svc.submit(request)
            assert again.artifact_cache_hit          # artifact cached
            assert again.deployments["x86"].ok       # retry succeeded
            assert not again.fully_cached            # ...but it JITted
            # only a third submit is a pure memo hit
            assert svc.submit(request).fully_cached
        finally:
            svc.shutdown()

    def test_image_for_reraises_recorded_error(self):
        svc, _ = self._flaky_service(fail_times=1)
        try:
            result = svc.submit(CompileRequest(
                source=SAXPY, name="m", targets=[X86],
                tolerate_failures=True))
            with pytest.raises(MemoryError):
                result.image_for("x86")
        finally:
            svc.shutdown()


# ---------------------------------------------------------------------------
# the async facade
# ---------------------------------------------------------------------------

CATALOG = list(TARGETS.values())


class TestAsyncFacade:
    def test_submit_matches_sync_submit(self):
        sync = CompilationService(executor="inline")
        request = CompileRequest(source=SAXPY, name="m",
                                 targets=CATALOG)
        sync_result = sync.submit(request)

        async def main():
            async with AsyncCompilationService(executor="inline") \
                    as service:
                return await service.submit(request)

        async_result = asyncio.run(main())
        sync.shutdown()
        assert sorted(async_result.target_names) == \
            sorted(sync_result.target_names)
        for name in async_result.target_names:
            assert code_of(async_result.image_for(name)) == \
                code_of(sync_result.image_for(name))
            assert simulate("saxpy_fp", async_result.image_for(name)) \
                == simulate("saxpy_fp", sync_result.image_for(name))

    def test_deploy_is_the_request_verb(self):
        async def main():
            async with AsyncCompilationService(executor="inline") \
                    as service:
                result = await service.deploy(CompileRequest(
                    source=SUM_U8, name="m", targets=[X86]))
                return result

        result = asyncio.run(main())
        assert result.target_names == ["x86"]

    def test_batch_gather_and_full_caching(self):
        requests = [CompileRequest(source=SAXPY, name="m",
                                   targets=CATALOG),
                    CompileRequest(source=SUM_U8, name="m2",
                                   targets=[X86])]

        async def main():
            async with AsyncCompilationService() as service:
                first = await service.submit_batch(requests)
                second = await service.submit_batch(requests)
                return first, second, service.stats()

        first, second, stats = asyncio.run(main())
        assert [r.fully_cached for r in first] == [False, False]
        assert [r.fully_cached for r in second] == [True, True]
        assert stats.requests == 4
        assert stats.deploy_compiles == len(CATALOG) + 1

    def test_concurrent_identical_requests_coalesce(self):
        request = CompileRequest(source=SAXPY, name="m",
                                 targets=CATALOG)

        async def main():
            async with AsyncCompilationService() as service:
                results = await asyncio.gather(
                    *(service.submit(request) for _ in range(8)))
                return results, service.stats()

        results, stats = asyncio.run(main())
        # all eight callers shared one serving task...
        assert len({id(r) for r in results}) == 1
        assert stats.coalesced_requests == 7
        # ...so the herd cost one offline compile and one fan-out
        assert stats.artifact_stores == 1
        assert stats.deploy_compiles == len(CATALOG)

    def test_failure_policy_is_part_of_coalescing_identity(self):
        """Two concurrent requests identical except for
        ``tolerate_failures`` must NOT coalesce: the strict one is
        promised an exception on the first failing target, the
        tolerant one a partial result with the error recorded — one
        serving task cannot honor both contracts."""
        core = CompilationService(executor="inline")
        original = core.pool._compile

        def flaky(artifact, target, flow):
            raise MemoryError("JIT always fails in this test")

        core.pool._compile = flaky
        strict = CompileRequest(source=SAXPY, name="m", targets=[X86],
                                tolerate_failures=False)
        tolerant = CompileRequest(source=SAXPY, name="m",
                                  targets=[X86],
                                  tolerate_failures=True)

        async def main():
            async with AsyncCompilationService(core) as service:
                assert service.request_key(strict) != \
                    service.request_key(tolerant)
                strict_task = asyncio.ensure_future(
                    service.submit(strict))
                tolerant_task = asyncio.ensure_future(
                    service.submit(tolerant))
                results = await asyncio.gather(
                    strict_task, tolerant_task,
                    return_exceptions=True)
                return results, service.stats()

        (strict_result, tolerant_result), stats = asyncio.run(main())
        core.shutdown()
        core.pool._compile = original
        # the strict caller got its promised exception...
        assert isinstance(strict_result, MemoryError)
        # ...the tolerant caller its promised partial result...
        assert tolerant_result.failed_targets == ["x86"]
        assert isinstance(
            tolerant_result.deployments["x86"].error, MemoryError)
        # ...which is only possible because the *requests* never
        # coalesced: each ran its own fan-out (two executor
        # submissions, two failures).  The offline halves still
        # share one artifact compile — identical sources should —
        # so the artifact was stored once.
        assert stats.deploy_executors["inline"]["submitted"] == 2
        assert stats.deploy_executors["inline"]["failed"] == 2
        assert stats.artifact_stores == 1

    def test_deploy_one_and_many_await_pool_futures(self):
        async def main():
            async with AsyncCompilationService(executor="inline") \
                    as service:
                artifact = await service.artifact(SAXPY, "k")
                one = await service.deploy_one(artifact, X86, "split")
                many = await service.deploy_many(artifact, CATALOG,
                                                 "split")
                return one, many

        one, many = asyncio.run(main())
        assert many["x86"] is one          # memoized across awaits
        assert sorted(many) == sorted(TARGETS)

    def test_wraps_existing_service_and_shares_caches(self):
        core = CompilationService(executor="inline")
        try:
            warm = core.submit(CompileRequest(source=SAXPY, name="m",
                                              targets=[X86]))

            async def main():
                async with AsyncCompilationService(core) as service:
                    return await service.submit(CompileRequest(
                        source=SAXPY, name="m", targets=[X86]))

            result = asyncio.run(main())
            assert result.fully_cached
            assert result.image_for("x86") is warm.image_for("x86")
            # wrapping must not shut the caller's core down
            assert core.submit(CompileRequest(
                source=SAXPY, name="m", targets=[X86])).fully_cached
        finally:
            core.shutdown()

    def test_async_tolerates_failures_like_sync(self):
        core = CompilationService(executor="inline")
        original = core.pool._compile
        calls = []

        def flaky(artifact, target, flow):
            calls.append(target.name)
            if len(calls) == 1:
                raise MemoryError("transient JIT failure")
            return original(artifact, target, flow)

        core.pool._compile = flaky

        async def main():
            async with AsyncCompilationService(core) as service:
                result = await service.submit(CompileRequest(
                    source=SAXPY, name="m", targets=[X86],
                    tolerate_failures=True))
                retry = await service.submit(CompileRequest(
                    source=SAXPY, name="m", targets=[X86],
                    tolerate_failures=True))
                return result, retry

        result, retry = asyncio.run(main())
        core.shutdown()
        assert result.failed_targets == ["x86"]
        assert not result.fully_cached
        assert retry.deployments["x86"].ok

    def test_stats_as_dict_shape(self):
        async def main():
            async with AsyncCompilationService(cache_shards=4) \
                    as service:
                await service.submit(CompileRequest(
                    source=SAXPY, name="m", targets=[X86]))
                return service.stats().as_dict()

        snapshot = asyncio.run(main())
        assert snapshot["requests"] == 1
        assert len(snapshot["artifact"]["shards"]) == 4
        assert "thread" in snapshot["deploy"]["executors"]
        assert snapshot["deploy"]["compiles"] == 1
        assert snapshot["latency"]["offline_s"] > 0


class TestAsyncDeployHelper:
    def test_core_online_deploy_async(self):
        from repro.core.online import deploy_async

        core = CompilationService(executor="inline")
        try:
            artifact = core.artifact(SAXPY, "k")

            async def main():
                return await deploy_async(artifact, X86, "split",
                                          service=core)

            image = asyncio.run(main())
            assert image is core.deploy(artifact, X86, "split")
        finally:
            core.shutdown()
