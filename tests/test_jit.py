"""JIT pipeline tests: frontend, regalloc, codegen, simulation —
including the three-way differential VM == x86 sim == sparc sim."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode import emit_module
from repro.core import offline_compile, deploy
from repro.jit import JITCompiler, JITOptions, compile_for_target
from repro.jit.frontend import decode_function
from repro.jit.regalloc import allocate, reg_class
from repro.ir import verify_function
from repro.lang import types as ty
from repro.opt import PassManager, standard_passes
from repro.semantics import Memory
from repro.targets import DSP, HOST, PPC, SPARC, X86, Simulator
from repro.vm import VM
from repro.workloads import ALL_KERNELS, TABLE1
from tests.support import lower_checked

ALL_TARGETS = [X86, SPARC, PPC, DSP, HOST]


def compile_source(source, target, flow="split"):
    artifact = offline_compile(source)
    return deploy(artifact, target, flow)


class TestFrontend:
    def test_roundtrip_through_bytecode_verifies(self):
        module = lower_checked("""
            int collatz(int n) {
                int steps = 0;
                while (n != 1) {
                    if (n % 2 == 0) n = n / 2; else n = 3 * n + 1;
                    steps++;
                }
                return steps;
            }""")
        bc, _ = emit_module(module)
        lir, work = decode_function(bc["collatz"], bc.functions)
        verify_function(lir)
        assert work > 0

    def test_local_regs_mapping_exposed(self):
        module = lower_checked("int f(int a) { int b = a + 1; return b; }")
        bc, _ = emit_module(module)
        lir, _ = decode_function(bc["f"], bc.functions)
        assert len(lir.local_regs) == len(bc["f"].local_types)


class TestRegisterAllocation:
    def lir_of(self, source, name):
        module = lower_checked(source)
        for func in module:
            PassManager(standard_passes(), verify=True).run(func)
        bc, _ = emit_module(module)
        lir, _ = decode_function(bc[name], bc.functions)
        return lir

    def test_no_spills_with_plenty_of_registers(self):
        lir = self.lir_of("int f(int a, int b) { return a + b; }", "f")
        allocation = allocate(lir, {"int": 32, "flt": 32, "vec": 8})
        assert allocation.spilled_regs == 0

    def test_spills_appear_under_pressure(self):
        from repro.workloads import REGALLOC_CORPUS
        lir = self.lir_of(REGALLOC_CORPUS["poly8"], "poly8")
        tight = allocate(lir, {"int": 6, "flt": 6, "vec": 4})
        roomy = allocate(lir, {"int": 64, "flt": 8, "vec": 4})
        assert tight.spilled_regs > 0
        assert roomy.spilled_regs == 0

    def test_no_overlapping_assignments(self):
        """Two simultaneously live vregs must never share a register."""
        from repro.ir.liveness import live_ranges
        from repro.workloads import REGALLOC_CORPUS
        lir = self.lir_of(REGALLOC_CORPUS["stats"], "stats")
        allocation = allocate(lir, {"int": 10, "flt": 6, "vec": 4})
        ranges = live_ranges(lir)
        homed = [(reg, ranges[reg], allocation.homes[reg.id])
                 for reg in ranges if allocation.homes[reg.id][0] == "reg"]
        for i, (reg_a, (sa, ea), home_a) in enumerate(homed):
            for reg_b, (sb, eb), home_b in homed[i + 1:]:
                if home_a == home_b and reg_class(reg_a) == \
                        reg_class(reg_b):
                    overlap = not (ea < sb or eb < sa)
                    assert not overlap, (
                        f"{reg_a} and {reg_b} share {home_a} while "
                        f"both live")

    def test_scratch_registers_never_allocated(self):
        from repro.jit.regalloc import SCRATCH
        lir = self.lir_of("int f(int a, int b) { return a * b; }", "f")
        allocation = allocate(lir, {"int": 8, "flt": 4, "vec": 4})
        for kind, where in allocation.homes.values():
            if kind == "reg":
                cls, index = where
                assert index < 8 - SCRATCH.get(cls, 2) or cls != "int"


class TestExecutionDifferential:
    """VM and all target simulators must produce identical results."""

    N_VALUES = [0, 1, 5, 16, 33, 64]

    @pytest.mark.parametrize("kernel_name", sorted(ALL_KERNELS))
    @pytest.mark.parametrize("target", ALL_TARGETS,
                             ids=[t.name for t in ALL_TARGETS])
    def test_kernels_match_vm(self, kernel_name, target):
        kernel = ALL_KERNELS[kernel_name]
        artifact = offline_compile(kernel.source)
        n = 40

        vm_memory = Memory()
        run = kernel.prepare(vm_memory, n, seed=3)
        vm = VM(artifact.bytecode, memory=vm_memory)
        vm_value = vm.call(kernel.entry, run.args)
        vm_outputs = [vm_memory.read_array(tag, addr, count)
                      for tag, addr, count in run.outputs]

        compiled = deploy(artifact, target, "split")
        sim_memory = Memory()
        sim_run = kernel.prepare(sim_memory, n, seed=3)
        result = Simulator(compiled, sim_memory).run(kernel.entry,
                                                     sim_run.args)
        sim_outputs = [sim_memory.read_array(tag, addr, count)
                       for tag, addr, count in sim_run.outputs]

        assert result.value == vm_value
        assert sim_outputs == vm_outputs

    @pytest.mark.parametrize("n", N_VALUES)
    def test_sum_u8_every_size(self, n):
        kernel = TABLE1["sum_u8"]
        artifact = offline_compile(kernel.source)
        values = {}
        for target in (X86, SPARC, PPC):
            memory = Memory()
            run = kernel.prepare(memory, n, seed=n + 1)
            compiled = deploy(artifact, target, "split")
            result = Simulator(compiled, memory).run(kernel.entry,
                                                     run.args)
            values[target.name] = result.value
        assert len(set(values.values())) == 1

    @settings(max_examples=15, deadline=None)
    @given(a=st.integers(-10**6, 10**6), b=st.integers(-10**6, 10**6))
    def test_scalar_arith_property(self, a, b):
        source = ("int f(int a, int b) { return (a + b) * 3 - (a ^ b); }")
        artifact = offline_compile(source)
        vm_value = VM(artifact.bytecode).call("f", [a, b])
        for target in (X86, SPARC):
            compiled = deploy(artifact, target, "split")
            assert Simulator(compiled).run("f", [a, b]).value == vm_value

    def test_recursive_calls_simulate(self):
        source = ("int fib(int n) { if (n < 2) return n; "
                  "return fib(n-1) + fib(n-2); }")
        compiled = compile_source(source, X86)
        result = Simulator(compiled).run("fib", [12])
        assert result.value == 144
        assert result.calls > 100


class TestFlows:
    def test_online_only_produces_simd_code(self):
        kernel = TABLE1["saxpy_fp"]
        artifact = offline_compile(kernel.source)
        online = deploy(artifact, X86, "online-only")
        offline_only = deploy(artifact, X86, "offline-only")
        ops_online = {i.op for i in online["saxpy"].code}
        ops_offline = {i.op for i in offline_only["saxpy"].code}
        assert "vload" in ops_online        # re-vectorized at run time
        assert "vload" not in ops_offline

    def test_split_and_online_similar_code_quality(self):
        kernel = TABLE1["saxpy_fp"]
        artifact = offline_compile(kernel.source)
        n = 64
        cycles = {}
        for flow in ("split", "online-only", "offline-only"):
            compiled = deploy(artifact, X86, flow)
            memory = Memory()
            run = kernel.prepare(memory, n, seed=5)
            cycles[flow] = Simulator(compiled, memory).run(
                kernel.entry, run.args).cycles
        assert cycles["split"] < cycles["offline-only"]
        assert abs(cycles["split"] - cycles["online-only"]) <= \
            0.25 * cycles["online-only"]

    def test_split_jit_does_no_online_analysis(self):
        kernel = TABLE1["saxpy_fp"]
        artifact = offline_compile(kernel.source)
        split = deploy(artifact, X86, "split")
        online = deploy(artifact, X86, "online-only")
        assert split.total_jit_analysis_work == 0
        assert online.total_jit_analysis_work > 0
        assert split.total_jit_work < online.total_jit_work

    def test_flow_names_validated(self):
        with pytest.raises(ValueError):
            JITOptions.flow("warp-speed")


class TestCodeSize:
    def test_risc_fixed_width(self):
        compiled = compile_source(
            "int f(int a, int b) { return a + b; }", SPARC)
        assert all(i.size == 4 for i in compiled["f"].code)

    def test_code_bytes_accumulate(self):
        compiled = compile_source(
            "int f(int a, int b) { return a + b; }", X86)
        func = compiled["f"]
        assert func.code_bytes == sum(i.size for i in func.code) + \
            X86.sizes.prologue_bytes

    def test_bytecode_more_compact_than_risc_native(self):
        from repro.bytecode.encode import encoded_code_size
        kernel = TABLE1["saxpy_fp"]
        artifact = offline_compile(kernel.source)
        bc_size = sum(encoded_code_size(f)
                      for f in artifact.scalar_bytecode)
        for target in (SPARC, PPC):
            compiled = deploy(artifact, target, "offline-only")
            assert bc_size < compiled.total_code_bytes
        # x86's variable-length encoding is famously dense; the claim
        # there is "comparable", not "smaller" (see EXPERIMENTS.md).
        x86 = deploy(artifact, X86, "offline-only")
        assert bc_size < 1.5 * x86.total_code_bytes
