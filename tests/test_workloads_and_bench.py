"""Workload corpus sanity and experiment-harness tests."""

import pytest

from repro.bench import format_table
from repro.bench.experiments import run_table1
from repro.bench.paperdata import PAPER_TABLE1_RELATIVE
from repro.core import offline_compile
from repro.semantics import Memory
from repro.vm import VM
from repro.workloads import (
    ALL_KERNELS, EXTRA_KERNELS, REGALLOC_CORPUS, TABLE1, kernel_by_name,
)


class TestCorpus:
    def test_table1_has_the_papers_six_kernels(self):
        assert set(TABLE1) == {"vecadd_fp", "saxpy_fp", "dscal_fp",
                               "max_u8", "sum_u8", "sum_u16"}

    def test_paper_data_covers_all_cells(self):
        for kernel in TABLE1:
            for target in ("x86", "sparc", "ppc"):
                assert (kernel, target) in PAPER_TABLE1_RELATIVE

    def test_lookup_helper(self):
        assert kernel_by_name("sdot").entry == "sdot"
        with pytest.raises(KeyError):
            kernel_by_name("nope")

    @pytest.mark.parametrize("name", sorted(ALL_KERNELS))
    def test_every_kernel_compiles_and_runs(self, name):
        kernel = ALL_KERNELS[name]
        artifact = offline_compile(kernel.source)
        memory = Memory()
        run = kernel.prepare(memory, 24, seed=1)
        VM(artifact.bytecode, memory=memory).call(kernel.entry, run.args)

    @pytest.mark.parametrize("name", sorted(ALL_KERNELS))
    def test_vectorizable_flag_accurate(self, name):
        kernel = ALL_KERNELS[name]
        artifact = offline_compile(kernel.source)
        vectorized = kernel.entry in artifact.vectorized_functions
        assert vectorized == kernel.vectorizable, \
            f"{name}: flag says {kernel.vectorizable}, got {vectorized}"

    def test_inputs_deterministic_per_seed(self):
        kernel = TABLE1["sum_u8"]
        m1, m2 = Memory(), Memory()
        r1 = kernel.prepare(m1, 32, seed=9)
        r2 = kernel.prepare(m2, 32, seed=9)
        from repro.lang import types as ty
        assert m1.read_array(ty.U8, r1.args[0], 32) == \
            m2.read_array(ty.U8, r2.args[0], 32)

    @pytest.mark.parametrize("name", sorted(REGALLOC_CORPUS))
    def test_regalloc_corpus_compiles(self, name):
        artifact = offline_compile(REGALLOC_CORPUS[name],
                                   do_vectorize=False)
        assert name in artifact.bytecode.functions


class TestHarness:
    def test_format_table_alignment(self):
        text = format_table(["a", "long header"],
                            [(1, 2.5), ("xyz", 3)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_run_table1_subset(self):
        from repro.targets import X86
        rows = run_table1(n=64, targets=(X86,), kernels=["sum_u8"])
        assert len(rows) == 1
        assert rows[0].relative > 1.0
        assert rows[0].paper_relative == 5.3
