"""Bytecode emission, encoding, verification, disassembly tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode import (
    BCInstr, decode_module, disassemble, emit_module, encode_module,
    verify_module, BytecodeVerifyError,
)
from repro.bytecode.annotations import (
    HotnessAnnotation, HWRequirementAnnotation, RegAllocAnnotation,
    VecLoopAnnotation, decode_annotation, encode_annotation,
)
from repro.bytecode.module import BytecodeFunction, BytecodeModule
from repro.bytecode.varint import (
    read_sint, read_str, read_uint, write_sint, write_str, write_uint,
)
from repro.frontend import lower_source
from repro.opt import PassManager, standard_passes
from tests.support import lower_checked

GCD = """
int gcd(int a, int b) {
    while (b != 0) { int t = a % b; a = b; b = t; }
    return a;
}
"""


def emit(source):
    module = lower_checked(source)
    bc, labels = emit_module(module)
    verify_module(bc)
    return bc, labels


class TestVarint:
    @given(st.integers(0, 2**64 - 1))
    def test_uint_roundtrip(self, value):
        out = bytearray()
        write_uint(out, value)
        got, pos = read_uint(bytes(out), 0)
        assert got == value and pos == len(out)

    @given(st.integers(-2**63, 2**63 - 1))
    def test_sint_roundtrip(self, value):
        out = bytearray()
        write_sint(out, value)
        got, pos = read_sint(bytes(out), 0)
        assert got == value and pos == len(out)

    @given(st.text(max_size=60))
    def test_str_roundtrip(self, text):
        out = bytearray()
        write_str(out, text)
        got, pos = read_str(bytes(out), 0)
        assert got == text and pos == len(out)

    def test_small_values_one_byte(self):
        out = bytearray()
        write_uint(out, 100)
        assert len(out) == 1


class TestEmission:
    def test_branch_targets_resolve(self):
        bc, _ = emit(GCD)
        func = bc["gcd"]
        for instr in func.code:
            if instr.op in ("br", "brif"):
                assert 0 <= instr.arg < len(func.code)

    def test_label_map_covers_blocks(self):
        module = lower_checked(GCD)
        bc, labels = emit_module(module)
        func = module["gcd"]
        assert set(labels["gcd"]) == {b.label for b in func.blocks}

    def test_mutated_param_gets_prologue_copy(self):
        bc, _ = emit(GCD)            # gcd reassigns both params
        func = bc["gcd"]
        assert func.code[0].op == "ldarg"
        assert func.code[1].op == "stloc"

    def test_unmutated_param_stays_ldarg(self):
        bc, _ = emit("int f(int a, int b) { return a + b; }")
        ops = [i.op for i in bc["f"].code]
        assert ops.count("ldarg") == 2

    def test_frame_slots_emitted(self):
        bc, _ = emit("""
            int f(void) {
                int buf[10];
                buf[3] = 7;
                return buf[3];
            }""")
        func = bc["f"]
        assert len(func.frame_slots) == 1
        assert func.frame_slots[0].size == 40
        assert any(i.op == "frame" for i in func.code)

    def test_vector_ops_emitted(self):
        module = lower_checked("""
            void scale(float *x, int n) {
                for (int i = 0; i < n; i++) x[i] = 2.0f * x[i];
            }""")
        func = module["scale"]
        PassManager(standard_passes(), verify=True).run(func)
        from repro.opt.vectorize import vectorize
        assert vectorize(func).changed
        bc, _ = emit_module(module)
        verify_module(bc)
        ops = {i.op for i in bc["scale"].code}
        assert "vec.load" in ops and "vec.store" in ops
        assert "vec.splat" in ops and "vec.mul" in ops


class TestEncoding:
    def roundtrip(self, source, optimize=False, vectorize_it=False):
        module = lower_checked(source)
        if optimize:
            for func in module:
                PassManager(standard_passes(), verify=True).run(func)
        if vectorize_it:
            from repro.opt.vectorize import vectorize
            for func in module:
                vectorize(func)
        bc, _ = emit_module(module)
        raw = encode_module(bc)
        decoded = decode_module(raw)
        verify_module(decoded)
        return bc, decoded, raw

    def assert_equal_modules(self, bc, decoded):
        assert set(bc.functions) == set(decoded.functions)
        for name in bc.functions:
            a, b = bc[name], decoded[name]
            assert a.param_types == b.param_types
            assert a.ret_type == b.ret_type
            assert a.local_types == b.local_types
            assert len(a.code) == len(b.code)
            for x, y in zip(a.code, b.code):
                assert (x.op, x.ty, x.arg) == (y.op, y.ty, y.arg)

    def test_roundtrip_scalar(self):
        bc, decoded, _ = self.roundtrip(GCD)
        self.assert_equal_modules(bc, decoded)

    def test_roundtrip_vectorized(self):
        source = """
            int sum_u8(unsigned char *a, int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += a[i];
                return s;
            }"""
        bc, decoded, _ = self.roundtrip(source, optimize=True,
                                        vectorize_it=True)
        self.assert_equal_modules(bc, decoded)

    def test_roundtrip_floats_and_doubles(self):
        source = "double f(double x, float y) { return x * y + 0.5; }"
        bc, decoded, _ = self.roundtrip(source)
        self.assert_equal_modules(bc, decoded)

    def test_magic_rejected(self):
        with pytest.raises(ValueError):
            decode_module(b"NOPE" + b"\x00" * 10)

    def test_annotations_roundtrip(self):
        bc, _, _ = self.roundtrip(GCD)
        bc.annotations.append(VecLoopAnnotation(
            function="gcd", vector_pc=3, scalar_pc=9, lanes=16,
            elem="u8", kind="reduction", reduce_op="add",
            acc_type="i32", noalias_count=2))
        bc.annotations.append(RegAllocAnnotation(
            function="gcd", priorities=[5, 1, 900, 3]))
        bc.annotations.append(HotnessAnnotation(function="gcd",
                                                weight=12345))
        bc.annotations.append(HWRequirementAnnotation(
            function="gcd", wants_simd=True, wants_fp64=True))
        decoded = decode_module(encode_module(bc))
        kinds = [type(a).__name__ for a in decoded.annotations]
        assert kinds == ["VecLoopAnnotation", "RegAllocAnnotation",
                         "HotnessAnnotation", "HWRequirementAnnotation"]
        vec = decoded.annotations[0]
        assert vec.lanes == 16 and vec.reduce_op == "add"
        assert decoded.annotations[1].priorities == [5, 1, 900, 3]
        assert decoded.annotations[2].weight == 12345
        assert decoded.annotations[3].wants_simd
        assert decoded.annotations[3].wants_fp64
        assert not decoded.annotations[3].wants_fp

    @settings(max_examples=30, deadline=None)
    @given(priorities=st.lists(st.integers(0, 10**6), max_size=40),
           weight=st.integers(0, 10**9))
    def test_annotation_payload_roundtrip_property(self, priorities,
                                                   weight):
        for annotation in (
                RegAllocAnnotation(function="f", priorities=priorities),
                HotnessAnnotation(function="f", weight=weight)):
            out = bytearray()
            encode_annotation(out, annotation)
            decoded, pos = decode_annotation(bytes(out), 0)
            assert pos == len(out)
            assert decoded == annotation


class TestVerifier:
    def make_func(self, code, ret="i32", params=(), locals_=()):
        return BytecodeFunction("f", list(params), ret, list(locals_),
                                [], code)

    def verify(self, func):
        module = BytecodeModule("m")
        module.add(func)
        verify_module(module)

    def test_accepts_trivial(self):
        self.verify(self.make_func([
            BCInstr("const", "i32", 42), BCInstr("ret")]))

    def test_rejects_underflow(self):
        with pytest.raises(BytecodeVerifyError):
            self.verify(self.make_func([
                BCInstr("add", "i32"), BCInstr("ret")]))

    def test_rejects_type_mismatch(self):
        with pytest.raises(BytecodeVerifyError):
            self.verify(self.make_func([
                BCInstr("const", "i32", 1),
                BCInstr("const", "f32", 1.0),
                BCInstr("add", "i32"), BCInstr("ret")]))

    def test_rejects_missing_ret(self):
        with pytest.raises(BytecodeVerifyError):
            self.verify(self.make_func([
                BCInstr("const", "i32", 1), BCInstr("stloc", None, 0)],
                locals_=["i32"]))

    def test_rejects_bad_local_index(self):
        with pytest.raises(BytecodeVerifyError):
            self.verify(self.make_func([
                BCInstr("ldloc", None, 5), BCInstr("ret")],
                locals_=["i32"]))

    def test_rejects_branch_out_of_range(self):
        with pytest.raises(BytecodeVerifyError):
            self.verify(self.make_func([
                BCInstr("br", None, 99),
                BCInstr("const", "i32", 0), BCInstr("ret")]))

    def test_rejects_inconsistent_merge(self):
        # Two paths reach pc 5 with different stack depths.
        code = [
            BCInstr("const", "i32", 1),        # 0
            BCInstr("brif", None, 4),          # 1: jump with empty stack
            BCInstr("const", "i32", 7),        # 2: push
            BCInstr("br", None, 4),            # 3: jump with 1 on stack
            BCInstr("const", "i32", 0),        # 4
            BCInstr("ret"),                    # 5
        ]
        with pytest.raises(BytecodeVerifyError):
            self.verify(self.make_func(code))

    def test_accepts_diamond_with_joinable_tags(self):
        # One arm produces i64, the other u64; the merged value feeds
        # an address pop, which both tags satisfy.  The old
        # identical-states merge rule spuriously rejected this.
        code = [
            BCInstr("ldarg", None, 0),         # 0: condition
            BCInstr("brif", None, 4),          # 1
            BCInstr("const", "i64", 8),        # 2
            BCInstr("br", None, 5),            # 3
            BCInstr("const", "u64", 8),        # 4
            BCInstr("load", "i32"),            # 5: {i64,u64} as address
            BCInstr("ret"),                    # 6
        ]
        self.verify(self.make_func(code, params=["i32"]))

    def test_rejects_diamond_with_incompatible_use(self):
        # The join itself is fine ({i32,f32}), but the merged value
        # cannot satisfy an i32-typed add.
        code = [
            BCInstr("ldarg", None, 0),         # 0
            BCInstr("brif", None, 4),          # 1
            BCInstr("const", "i32", 1),        # 2
            BCInstr("br", None, 5),            # 3
            BCInstr("const", "f32", 1.0),      # 4
            BCInstr("const", "i32", 2),        # 5
            BCInstr("add", "i32"),             # 6: lhs may be f32
            BCInstr("ret"),                    # 7
        ]
        with pytest.raises(BytecodeVerifyError):
            self.verify(self.make_func(code, params=["i32"]))

    def test_loop_merge_requeues_to_fixpoint(self):
        # A loop whose back edge widens the header's slot from {i64}
        # to {i64,u64}: the verifier must re-queue the header and
        # still accept (the slot only ever feeds an address pop).
        code = [
            BCInstr("const", "i64", 16),       # 0
            BCInstr("load", "i32"),            # 1: header; addr pop
            BCInstr("brif", None, 5),          # 2: exit loop
            BCInstr("const", "u64", 16),       # 3: widen the slot
            BCInstr("br", None, 1),            # 4: back edge
            BCInstr("const", "i32", 0),        # 5
            BCInstr("ret"),                    # 6
        ]
        self.verify(self.make_func(code))

    def test_rejects_stack_left_at_ret(self):
        with pytest.raises(BytecodeVerifyError):
            self.verify(self.make_func([
                BCInstr("const", "i32", 1),
                BCInstr("const", "i32", 2),
                BCInstr("ret")]))

    def test_rejects_wrong_return_type(self):
        with pytest.raises(BytecodeVerifyError):
            self.verify(self.make_func([
                BCInstr("const", "f64", 1.0), BCInstr("ret")]))

    def test_rejects_call_to_unknown(self):
        with pytest.raises(BytecodeVerifyError):
            self.verify(self.make_func([
                BCInstr("call", None, "ghost"),
                BCInstr("ret")]))

    def test_rejects_float_bitwise(self):
        with pytest.raises(BytecodeVerifyError):
            self.verify(self.make_func([
                BCInstr("const", "f32", 1.0),
                BCInstr("const", "f32", 2.0),
                BCInstr("and", "f32"), BCInstr("ret")], ret="f32"))

    def test_all_compiler_output_verifies(self):
        for source in (GCD, "double f(double x) { return -x; }"):
            emit(source)


class TestDisassembler:
    def test_contains_function_header(self):
        bc, _ = emit(GCD)
        text = disassemble(bc)
        assert ".func gcd(i32, i32) -> i32" in text

    def test_branch_targets_marked(self):
        bc, _ = emit(GCD)
        text = disassemble(bc)
        assert "->" in text

    def test_annotations_listed(self):
        bc, _ = emit(GCD)
        bc.annotations.append(HotnessAnnotation(function="gcd",
                                                weight=5))
        assert "HotnessAnnotation" in disassemble(bc)


class TestCompactness:
    def test_bytecode_smaller_than_textual_ir(self):
        module = lower_checked(GCD)
        from repro.ir import format_module
        text_size = len(format_module(module).encode())
        bc, _ = emit_module(module)
        assert len(encode_module(bc)) < text_size
