"""Property-based differential testing with generated programs.

Random (but well-formed) MiniC expression trees and statement lists
are compiled through the full stack and executed by three independent
engines — IR interpreter, bytecode VM, and the x86 simulator — which
must agree bit-for-bit.  This is the strongest correctness net in the
suite: it exercises the optimizer, the emitter, the verifier, the JIT
and the allocator together on shapes no hand-written test covers.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bytecode import emit_module
from repro.core import deploy, offline_compile
from repro.ir.interp import IRInterpreter
from repro.opt import PassManager, standard_passes
from repro.semantics import Memory, TrapError
from repro.targets import SPARC, X86, Simulator
from repro.vm import VM
from tests.support import lower_checked

# ---------------------------------------------------------------------------
# generators
# ---------------------------------------------------------------------------

_INT_BIN = ["+", "-", "*", "&", "|", "^"]
_CMP = ["<", "<=", ">", ">=", "==", "!="]
_VARS = ["a", "b", "c"]


@st.composite
def int_expr(draw, depth=0):
    """A well-defined integer expression over variables a, b, c."""
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return str(draw(st.integers(-100, 100)))
        return draw(st.sampled_from(_VARS))
    kind = draw(st.integers(0, 3))
    if kind == 0:
        op = draw(st.sampled_from(_INT_BIN))
        left = draw(int_expr(depth + 1))
        right = draw(int_expr(depth + 1))
        return f"({left} {op} {right})"
    if kind == 1:
        op = draw(st.sampled_from(_CMP))
        left = draw(int_expr(depth + 1))
        right = draw(int_expr(depth + 1))
        return f"({left} {op} {right})"
    if kind == 2:
        inner = draw(int_expr(depth + 1))
        op = draw(st.sampled_from(["-", "~", "!"]))
        # Parenthesize the operand: '-' before a negative literal
        # would otherwise lex as the '--' decrement operator.
        return f"({op}({inner}))"
    cond = draw(int_expr(depth + 1))
    a = draw(int_expr(depth + 1))
    b = draw(int_expr(depth + 1))
    return f"({cond} ? {a} : {b})"


@st.composite
def statement_list(draw):
    """A few assignments mutating a, b, c (division-free)."""
    lines = []
    for _ in range(draw(st.integers(1, 5))):
        target = draw(st.sampled_from(_VARS))
        expr = draw(int_expr())
        op = draw(st.sampled_from(["=", "+=", "-=", "*=", "^="]))
        lines.append(f"{target} {op} {expr};")
    return "\n".join(lines)


def run_three_engines(source, entry, args):
    """IR interpreter, VM and x86 simulator on the same program."""
    plain = lower_checked(source)
    expected = IRInterpreter(plain).call(entry, args)

    optimized = lower_checked(source)
    for func in optimized:
        PassManager(standard_passes(), verify=True).run(func)
    bc, _ = emit_module(optimized)
    vm_value = VM(bc).call(entry, args)

    artifact = offline_compile(source)
    compiled = deploy(artifact, X86, "split")
    sim_value = Simulator(compiled).run(entry, args).value
    return expected, vm_value, sim_value


class TestRandomExpressions:
    @settings(max_examples=40, deadline=None)
    @given(expr=int_expr(), a=st.integers(-1000, 1000),
           b=st.integers(-1000, 1000), c=st.integers(-1000, 1000))
    def test_expression_agreement(self, expr, a, b, c):
        source = f"int f(int a, int b, int c) {{ return {expr}; }}"
        expected, vm_value, sim_value = run_three_engines(
            source, "f", [a, b, c])
        assert expected == vm_value == sim_value

    @settings(max_examples=25, deadline=None)
    @given(body=statement_list(), a=st.integers(-100, 100),
           b=st.integers(-100, 100), c=st.integers(-100, 100))
    def test_statement_agreement(self, body, a, b, c):
        source = f"""
        int f(int a, int b, int c) {{
            {body}
            return a ^ b ^ c;
        }}"""
        expected, vm_value, sim_value = run_three_engines(
            source, "f", [a, b, c])
        assert expected == vm_value == sim_value

    @settings(max_examples=20, deadline=None)
    @given(expr=int_expr(), n=st.integers(0, 20),
           seed=st.integers(0, 99))
    def test_loop_accumulation_agreement(self, expr, n, seed):
        source = f"""
        int f(int a, int n) {{
            int b = {seed};
            int c = a;
            int s = 0;
            for (int i = 0; i < n; i++) {{
                s += {expr};
                a = a + 1;
                b = b ^ s;
                c = c - b;
            }}
            return s;
        }}"""
        expected, vm_value, sim_value = run_three_engines(
            source, "f", [seed, n])
        assert expected == vm_value == sim_value


class TestTrapAgreement:
    """When one engine traps, all engines trap."""

    @settings(max_examples=15, deadline=None)
    @given(divisor=st.integers(-3, 3))
    def test_division_trap_consistency(self, divisor):
        source = "int f(int a, int b) { return a / b + a % b; }"
        outcomes = []
        for runner in ("interp", "vm", "sim"):
            try:
                if runner == "interp":
                    value = IRInterpreter(lower_checked(source)).call(
                        "f", [100, divisor])
                elif runner == "vm":
                    bc, _ = emit_module(lower_checked(source))
                    value = VM(bc).call("f", [100, divisor])
                else:
                    artifact = offline_compile(source)
                    value = Simulator(deploy(artifact, X86,
                                             "split")).run(
                        "f", [100, divisor]).value
                outcomes.append(("ok", value))
            except TrapError:
                outcomes.append(("trap", None))
        assert len(set(outcomes)) == 1
        if divisor == 0:
            assert outcomes[0][0] == "trap"


class TestMemoryPrograms:
    @settings(max_examples=15, deadline=None)
    @given(values=st.lists(st.integers(-128, 127), min_size=1,
                           max_size=40),
           stride=st.integers(1, 3))
    def test_strided_write_agreement(self, values, stride):
        from repro.lang import types as ty
        source = """
        int f(int *a, int n, int stride) {
            int touched = 0;
            for (int i = 0; i < n; i += stride) {
                a[i] = a[i] * 2 + 1;
                touched++;
            }
            int s = 0;
            for (int i = 0; i < n; i++) s += a[i];
            return s * 100 + touched;
        }"""
        artifact = offline_compile(source)

        vm_memory = Memory()
        addr = vm_memory.alloc_array(ty.I32, values)
        vm_value = VM(artifact.bytecode, memory=vm_memory).call(
            "f", [addr, len(values), stride])

        for target in (X86, SPARC):
            memory = Memory()
            addr = memory.alloc_array(ty.I32, values)
            compiled = deploy(artifact, target, "split")
            sim = Simulator(compiled, memory).run(
                "f", [addr, len(values), stride])
            assert sim.value == vm_value
