"""Tests for the core (offline/online/budget) and split packages."""

import pytest

from repro.bytecode.annotations import (
    HotnessAnnotation, HWRequirementAnnotation, RegAllocAnnotation,
    VecLoopAnnotation,
)
from repro.core import (
    compare_flows, deploy, offline_compile, select_bytecode,
)
from repro.lang import types as ty
from repro.semantics import Memory
from repro.split import compute_spill_priorities
from repro.split.regalloc_offline import optimal_spill_set
from repro.targets import SPARC, X86
from repro.workloads import TABLE1
from tests.support import lower_checked

SUM_U8 = TABLE1["sum_u8"].source


class TestOfflineCompile:
    def test_produces_both_bytecode_flavours(self):
        artifact = offline_compile(SUM_U8)
        assert artifact.bytecode.functions
        assert artifact.scalar_bytecode.functions
        scalar_ops = {i.op for f in artifact.scalar_bytecode
                      for i in f.code}
        vector_ops = {i.op for f in artifact.bytecode for i in f.code}
        assert not any(op.startswith("vec.") for op in scalar_ops)
        assert any(op.startswith("vec.") for op in vector_ops)

    def test_annotations_attached(self):
        artifact = offline_compile(SUM_U8)
        kinds = {type(a) for a in artifact.bytecode.annotations}
        assert VecLoopAnnotation in kinds
        assert RegAllocAnnotation in kinds
        assert HWRequirementAnnotation in kinds

    def test_vec_annotation_points_at_real_pcs(self):
        artifact = offline_compile(SUM_U8)
        func = artifact.bytecode["sum_u8"]
        for ann in artifact.bytecode.annotations_for(
                "sum_u8", VecLoopAnnotation):
            assert 0 <= ann.vector_pc < len(func.code)
            assert 0 <= ann.scalar_pc < len(func.code)
            assert ann.lanes == 16
            assert ann.kind == "reduction"

    def test_hw_annotation_reflects_code(self):
        artifact = offline_compile("""
            double heavy(double *x, int n) {
                double s = 0.0;
                for (int i = 0; i < n; i++) s += x[i];
                return s;
            }""")
        ann = artifact.bytecode.annotations_for(
            "heavy", HWRequirementAnnotation)[0]
        assert ann.wants_fp and ann.wants_fp64

    def test_hotness_passthrough(self):
        artifact = offline_compile(SUM_U8, hotness={"sum_u8": 777})
        ann = artifact.bytecode.annotations_for("sum_u8",
                                                HotnessAnnotation)[0]
        assert ann.weight == 777

    def test_offline_work_accounted(self):
        artifact = offline_compile(SUM_U8)
        assert artifact.offline_work > 0
        assert artifact.offline_time > 0

    def test_scalar_flavour_carries_no_annotations(self):
        artifact = offline_compile(SUM_U8)
        assert artifact.scalar_bytecode.annotations == []

    def test_vectorization_can_be_disabled(self):
        artifact = offline_compile(SUM_U8, do_vectorize=False)
        assert artifact.vectorized_functions == []

    def test_select_bytecode_per_flow(self):
        artifact = offline_compile(SUM_U8)
        assert select_bytecode(artifact, "split") is artifact.bytecode
        assert select_bytecode(artifact, "offline-only") is \
            artifact.scalar_bytecode
        assert select_bytecode(artifact, "online-only") is \
            artifact.scalar_bytecode
        with pytest.raises(ValueError):
            select_bytecode(artifact, "quantum")


class TestCompareFlows:
    def test_reports_all_flows(self):
        kernel = TABLE1["sum_u8"]
        artifact = offline_compile(kernel.source)

        def make_args(memory):
            return kernel.prepare(memory, 64, seed=2).args

        reports = compare_flows(artifact, X86, kernel.entry, make_args)
        # default = every registered flow, paper trio first
        names = [r.flow for r in reports]
        assert names[:3] == ["offline-only", "online-only", "split"]
        assert "split-O3" in names and "adaptive" in names
        assert len({repr(r.value) for r in reports}) == 1
        by_flow = {r.flow: r for r in reports}
        split = by_flow["split"]
        assert split.offline_work > 0
        assert split.online_analysis_work == 0
        assert sum(split.offline_pass_work.values()) == \
            split.offline_work

    def test_explicit_subset_respected(self):
        kernel = TABLE1["sum_u8"]
        artifact = offline_compile(kernel.source)

        def make_args(memory):
            return kernel.prepare(memory, 64, seed=2).args

        reports = compare_flows(artifact, X86, kernel.entry, make_args,
                                flows=("split", "offline-only"))
        assert [r.flow for r in reports] == ["split", "offline-only"]


class TestSpillPriorities:
    def test_loop_values_outrank_cold_values(self):
        module = lower_checked("""
            int f(int *a, int n) {
                int cold = a[0] + 7;
                int hot = 0;
                for (int i = 0; i < n; i++) hot += a[i];
                return hot + cold;
            }""")
        func = module["f"]
        weights = compute_spill_priorities(func)
        named = {}
        for block in func.blocks:
            for instr in block.instrs:
                for reg in instr.defs():
                    if reg.name in ("hot", "cold"):
                        named[reg.name] = weights[reg.id]
        assert named["hot"] > named["cold"]

    def test_nesting_increases_weight(self):
        module = lower_checked("""
            int f(int n) {
                int once = n * 3;
                int inner = 0;
                for (int i = 0; i < n; i++)
                    for (int j = 0; j < n; j++)
                        inner += i ^ j;
                return inner + once;
            }""")
        func = module["f"]
        weights = compute_spill_priorities(func)
        named = {}
        for block in func.blocks:
            for instr in block.instrs:
                for reg in instr.defs():
                    if reg.name in ("inner", "once"):
                        named.setdefault(reg.name, weights[reg.id])
        assert named["inner"] > 50 * named["once"] / 10

    def test_milp_reference_solves_small_instance(self):
        module = lower_checked("""
            int f(int a, int b, int c, int d) {
                int x = a + b;
                int y = c + d;
                int z = x * y;
                return z + x + y;
            }""")
        func = module["f"]
        spilled = optimal_spill_set(func, k=2)
        assert spilled is not None
        # With K=2 some values must go to memory, but not everything.
        from repro.ir.liveness import live_ranges
        assert 0 < len(spilled) < len(live_ranges(func))

    def test_milp_no_spills_with_enough_registers(self):
        module = lower_checked("int f(int a, int b) { return a + b; }")
        spilled = optimal_spill_set(module["f"], k=16)
        assert spilled == []


class TestAnnotationRobustness:
    """Annotations are advisory: corrupt ones must not break anything."""

    def test_stale_regalloc_annotation_ignored(self):
        artifact = offline_compile(SUM_U8)
        for ann in artifact.bytecode.annotations:
            if isinstance(ann, RegAllocAnnotation):
                ann.priorities = [1, 2, 3]        # wrong length
        compiled = deploy(artifact, X86, "split")
        memory = Memory()
        kernel = TABLE1["sum_u8"]
        run = kernel.prepare(memory, 50, seed=1)
        from repro.targets import Simulator
        result = Simulator(compiled, memory).run(kernel.entry, run.args)
        vm_memory = Memory()
        from repro.vm import VM
        run2 = kernel.prepare(vm_memory, 50, seed=1)
        assert result.value == VM(artifact.bytecode,
                                  memory=vm_memory).call(kernel.entry,
                                                         run2.args)

    def test_hostile_priorities_cannot_change_results(self):
        artifact = offline_compile(SUM_U8)
        for ann in artifact.bytecode.annotations:
            if isinstance(ann, RegAllocAnnotation):
                # Exactly wrong: invert every rank.
                top = max(ann.priorities) + 1
                ann.priorities = [top - p for p in ann.priorities]
        compiled = deploy(artifact, SPARC, "split")
        memory = Memory()
        kernel = TABLE1["sum_u8"]
        run = kernel.prepare(memory, 64, seed=9)
        from repro.targets import Simulator
        result = Simulator(compiled, memory).run(kernel.entry, run.args)
        expected = sum(memory.read_array(ty.U8, run.args[0], 64))
        assert result.value == expected
