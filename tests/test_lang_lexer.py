"""Lexer unit tests."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]   # drop eof


def texts(source):
    return [t.text for t in tokenize(source)][:-1]


class TestBasicTokens:
    def test_empty_source_yields_only_eof(self):
        toks = tokenize("")
        assert len(toks) == 1
        assert toks[0].kind == "eof"

    def test_keywords_and_identifiers(self):
        toks = tokenize("int foo while whilefoo _bar")
        assert [(t.kind, t.text) for t in toks[:-1]] == [
            ("kw", "int"), ("ident", "foo"), ("kw", "while"),
            ("ident", "whilefoo"), ("ident", "_bar"),
        ]

    def test_integer_literals(self):
        toks = tokenize("0 42 0x1F 100u 7L")
        assert [t.value for t in toks[:-1]] == [0, 42, 31, 100, 7]
        assert all(t.kind == "int" for t in toks[:-1])

    def test_float_literals(self):
        toks = tokenize("1.5 2.0f 3e2 1.5e-3 .25")
        assert [t.kind for t in toks[:-1]] == ["float"] * 5
        assert toks[0].value == 1.5
        assert toks[1].value == 2.0
        assert toks[2].value == 300.0
        assert toks[3].value == 1.5e-3
        assert toks[4].value == 0.25

    def test_float_suffix_forces_float_kind(self):
        toks = tokenize("2f")
        assert toks[0].kind == "float"
        assert toks[0].value == 2.0

    def test_char_literals(self):
        toks = tokenize(r"'a' '\n' '\0' '\\'")
        assert [t.value for t in toks[:-1]] == [97, 10, 0, 92]

    def test_operators_maximal_munch(self):
        assert texts("a<<=b") == ["a", "<<=", "b"]
        assert texts("a<<b") == ["a", "<<", "b"]
        assert texts("a<b") == ["a", "<", "b"]
        assert texts("x+++y") == ["x", "++", "+", "y"]

    def test_all_compound_assignment_ops(self):
        ops = ["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="]
        for op in ops:
            assert texts(f"a {op} b")[1] == op


class TestCommentsAndPositions:
    def test_line_comments_skipped(self):
        assert texts("a // comment here\n b") == ["a", "b"]

    def test_block_comments_skipped(self):
        assert texts("a /* x\ny\nz */ b") == ["a", "b"]

    def test_line_numbers_tracked(self):
        toks = tokenize("a\nb\n  c")
        assert toks[0].line == 1
        assert toks[1].line == 2
        assert toks[2].line == 3
        assert toks[2].col == 3

    def test_line_numbers_after_block_comment(self):
        toks = tokenize("/* one\ntwo */ x")
        assert toks[0].line == 2


class TestLexErrors:
    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")

    def test_empty_char_literal(self):
        with pytest.raises(LexError):
            tokenize("''")

    def test_unterminated_char_literal(self):
        with pytest.raises(LexError):
            tokenize("'a")

    def test_malformed_exponent(self):
        with pytest.raises(LexError):
            tokenize("1e")

    def test_malformed_hex(self):
        with pytest.raises(LexError):
            tokenize("0x")

    def test_error_carries_position(self):
        with pytest.raises(LexError) as exc:
            tokenize("ok\n  @")
        assert exc.value.line == 2
        assert exc.value.col == 3
