"""Shared helpers for the test suite."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.frontend import lower_source
from repro.ir.function import Module
from repro.ir.interp import IRInterpreter
from repro.ir.verify import verify_function
from repro.lang import types as ty
from repro.semantics import Memory


def lower_checked(source: str) -> Module:
    """Lower MiniC source and verify every resulting function."""
    module = lower_source(source)
    for func in module:
        verify_function(func)
    return module


def run_ir(source: str, name: str, args: Sequence,
           arrays: Optional[Dict[str, Tuple[ty.Type, List]]] = None):
    """Compile ``source``, allocate named arrays, call ``name``.

    ``arrays`` maps argument placeholders to ``(elem_ty, values)``; the
    placeholder string appearing in ``args`` is replaced by the
    allocated address.  Returns ``(result, memory, addresses)``.
    """
    module = lower_checked(source)
    memory = Memory()
    addresses: Dict[str, int] = {}
    if arrays:
        for key, (elem_ty, values) in arrays.items():
            addresses[key] = memory.alloc_array(elem_ty, values)
    concrete = [addresses.get(a, a) if isinstance(a, str) else a
                for a in args]
    interp = IRInterpreter(module, memory)
    result = interp.call(name, concrete)
    return result, memory, addresses
