"""Direct unit tests for IR interpreter corners not reachable from
MiniC (vector instructions, traps, fuel) and printer round-trips."""

import pytest

from repro.ir import (
    BinOp, Branch, Const, IRBuilder, Function, Jump, Load, Module, Move,
    Ret, Select, Store, VReduce, format_function, verify_function,
)
from repro.ir.printer import format_instr
from repro.ir.interp import IRInterpreter
from repro.ir.values import vec_of
from repro.lang import types as ty
from repro.semantics import Memory, TrapError


def vector_sum_function():
    """sum16u8(addr) -> i32: one vreduce over a loaded vector."""
    func = Function("sum16", ty.I32)
    addr = func.new_param(ty.U64, "addr")
    block = func.new_block("entry")
    builder = IRBuilder(func)
    builder.set_block(block)
    vty = vec_of(ty.U8)
    vec = builder.vload(addr, vty)
    total = builder.vreduce("add", vec, vty, acc_ty=ty.I32)
    builder.ret(total)
    verify_function(func)
    module = Module("m")
    module.add(func)
    return module


class TestVectorSemantics:
    def test_vreduce_widens_exactly(self):
        module = vector_sum_function()
        memory = Memory()
        addr = memory.alloc_array(ty.U8, [255] * 16)
        interp = IRInterpreter(module, memory)
        # 16 * 255 = 4080 > 255: must not wrap at 8 bits.
        assert interp.call("sum16", [addr]) == 4080

    def test_vsplat_and_vbinop(self):
        func = Function("splat_add", ty.I32)
        addr = func.new_param(ty.U64, "addr")
        block = func.new_block("entry")
        builder = IRBuilder(func)
        builder.set_block(block)
        vty = vec_of(ty.U8)
        vec = builder.vload(addr, vty)
        ones = builder.vsplat(Const(1, ty.U8), vty)
        summed = builder.vbinop("add", vec, ones, vty)
        total = builder.vreduce("add", summed, vty, acc_ty=ty.I32)
        builder.ret(total)
        verify_function(func)
        module = Module("m")
        module.add(func)
        memory = Memory()
        data = memory.alloc_array(ty.U8, list(range(16)))
        # sum(0..15) + 16 = 120 + 16
        assert IRInterpreter(module, memory).call(
            "splat_add", [data]) == 136

    def test_vstore_roundtrip(self):
        func = Function("copyv", ty.VOID)
        src = func.new_param(ty.U64, "src")
        dst = func.new_param(ty.U64, "dst")
        block = func.new_block("entry")
        builder = IRBuilder(func)
        builder.set_block(block)
        vty = vec_of(ty.F32)
        builder.vstore(dst, builder.vload(src, vty), vty)
        builder.ret()
        verify_function(func)
        module = Module("m")
        module.add(func)
        memory = Memory()
        a = memory.alloc_array(ty.F32, [1.0, 2.0, 3.0, 4.0])
        b = memory.alloc_array(ty.F32, [0.0] * 4)
        IRInterpreter(module, memory).call("copyv", [a, b])
        assert memory.read_array(ty.F32, b, 4) == [1.0, 2.0, 3.0, 4.0]


class TestInterpreterTraps:
    def test_fuel_limit(self):
        func = Function("spin", ty.VOID)
        block = func.new_block("entry")
        block.append(Jump("entry0"))
        block.label = "entry0"
        module = Module("m")
        module.add(func)
        interp = IRInterpreter(module, fuel=50)
        with pytest.raises(TrapError):
            interp.call("spin", [])

    def test_wrong_arity(self):
        module = vector_sum_function()
        with pytest.raises(TrapError):
            IRInterpreter(module).call("sum16", [])

    def test_read_of_undefined_register_guarded(self):
        func = Function("bad", ty.I32)
        ghost = func.new_reg(ty.I32)
        block = func.new_block("entry")
        block.append(Ret(ghost))
        module = Module("m")
        module.add(func)
        with pytest.raises(TrapError):
            IRInterpreter(module).call("bad", [])


class TestPrinter:
    def test_every_instruction_has_a_text_form(self):
        func = Function("f", ty.I32)
        a = func.new_param(ty.I32, "a")
        block = func.new_block("entry")
        builder = IRBuilder(func)
        builder.set_block(block)
        vty = vec_of(ty.I32)
        instrs = [
            BinOp("add", func.new_reg(ty.I32), a, Const(1, ty.I32),
                  ty.I32),
            Move(func.new_reg(ty.I32), a),
            Select(func.new_reg(ty.I32), a, a, Const(0, ty.I32), ty.I32),
            Load(func.new_reg(ty.I32), Const(64, ty.U64), ty.I32),
            Store(Const(64, ty.U64), a, ty.I32),
            Ret(a),
        ]
        for instr in instrs:
            text = format_instr(instr)
            assert text and "unknown" not in text

    def test_function_dump_contains_blocks_and_frame(self):
        from tests.support import lower_checked
        module = lower_checked("""
            int f(int n) {
                int buf[4];
                buf[0] = n;
                return buf[0];
            }""")
        text = format_function(module["f"])
        assert "func @f" in text
        assert "frame buf" in text
        assert "entry0:" in text
