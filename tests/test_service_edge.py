"""The serving edge: wire schema, tenancy, admission, routing.

Unit tests cover the pure pieces (token buckets with an injected
clock, the admission gate's arithmetic, the latency histogram, wire
validation); integration tests boot a real :class:`EdgeServer` on an
ephemeral port and talk to it with :class:`EdgeClient`, asserting on
the exact HTTP statuses and structured error codes remote clients
would see — 401 vs 403 vs 429 vs 503 are the edge's contract, not
implementation detail.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service.edge import (
    AdaptiveExecutor, AdmissionController, EdgeClient, EdgeConfig,
    EdgeServer, LatencyHistogram, Tenant, TenantTable, TokenBucket,
    WireError, parse_compile_request, parse_deploy_request,
)
from repro.workloads import TABLE1

SAXPY = TABLE1["saxpy_fp"].source
SUM_U8 = TABLE1["sum_u8"].source


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ---------------------------------------------------------------------------
# token buckets
# ---------------------------------------------------------------------------

class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == \
            [True, True, True, False]

    def test_refill_timing_is_exact(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()
        # 2 tokens/s: after 0.4s there is still < 1 token
        clock.advance(0.4)
        assert not bucket.try_take()
        # ...and at 0.5s exactly one token has accrued
        clock.advance(0.1)
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=2, clock=clock)
        clock.advance(3600)
        assert bucket.available == pytest.approx(2.0)

    def test_retry_after_names_the_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=4.0, burst=1, clock=clock)
        assert bucket.try_take()
        # empty; one token accrues in 1/4 s
        assert bucket.retry_after() == pytest.approx(0.25)
        clock.advance(0.25)
        assert bucket.retry_after() == pytest.approx(0.0)

    def test_unlimited_bucket_never_refuses(self):
        bucket = TokenBucket(rate=None)
        assert all(bucket.try_take() for _ in range(1000))
        assert bucket.retry_after() == 0.0

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


# ---------------------------------------------------------------------------
# admission arithmetic
# ---------------------------------------------------------------------------

class TestAdmissionController:
    def test_queue_bound(self):
        gate = AdmissionController(capacity=2, max_wait_s=None,
                                   workers=1)
        assert gate.evaluate().admitted
        gate.on_enqueue()
        gate.on_enqueue()
        decision = gate.evaluate()
        assert not decision.admitted
        assert decision.reason == "queue_full"
        assert decision.queue_depth == 2

    def test_estimated_wait_gate(self):
        gate = AdmissionController(capacity=100, max_wait_s=1.0,
                                   workers=2)
        # no completions yet: EWMA is 0, only the depth bound applies
        gate.on_enqueue()
        assert gate.evaluate().admitted
        # one completion at 0.5s seeds the EWMA
        gate.on_start()
        gate.on_finish(0.5)
        # backlog of 3 queued + 1 in service at 0.5s each over 2
        # workers -> 1.0s estimated wait, still admitted (gate is >)
        for _ in range(4):
            gate.on_enqueue()
        gate.on_start()
        assert gate.estimated_wait_s() == pytest.approx(1.0)
        assert gate.evaluate().admitted
        gate.on_enqueue()
        decision = gate.evaluate()
        assert not decision.admitted
        assert decision.reason == "overload"
        assert decision.estimated_wait_s > 1.0

    def test_ewma_tracks_recent_service_times(self):
        gate = AdmissionController(capacity=10, max_wait_s=5.0,
                                   workers=1)
        gate.on_enqueue(); gate.on_start(); gate.on_finish(1.0)
        assert gate.ewma_service_s == pytest.approx(1.0)
        gate.on_enqueue(); gate.on_start(); gate.on_finish(2.0)
        assert gate.ewma_service_s == pytest.approx(1.2)


class TestLatencyHistogram:
    def test_percentiles_bracket_the_data(self):
        hist = LatencyHistogram()
        for _ in range(99):
            hist.observe(0.010)
        hist.observe(1.0)
        assert 0.005 <= hist.percentile(0.50) <= 0.020
        assert hist.percentile(0.99) <= 1.1
        assert hist.percentile(0.99) > hist.percentile(0.50)
        snapshot = hist.as_dict()
        assert snapshot["count"] == 100
        assert snapshot["max_ms"] == pytest.approx(1000.0)

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.percentile(0.99) == 0.0
        assert hist.as_dict()["count"] == 0


# ---------------------------------------------------------------------------
# wire validation
# ---------------------------------------------------------------------------

class TestWireValidation:
    def test_deploy_roundtrip(self):
        request = parse_deploy_request(
            {"source": SAXPY, "name": "m", "targets": ["x86", "arm"],
             "flow": "split", "tolerate_failures": True})
        assert request.name == "m"
        assert request.targets == ["x86", "arm"]
        assert request.tolerate_failures is True

    @pytest.mark.parametrize("payload,code", [
        ([1, 2], "bad_request"),                       # not an object
        ({"source": ""}, "bad_request"),               # empty source
        ({"source": "x"}, "bad_request"),              # no targets
        ({"source": "x", "targets": []}, "bad_request"),
        ({"source": "x", "targets": ["x86"],
          "tolerate_failures": "yes"}, "bad_request"),
        ({"source": "x", "targets": ["x86"],
          "typo_field": 1}, "bad_request"),
        ({"source": "x", "targets": ["vax"]}, "unknown_target"),
        ({"source": "x", "targets": ["x86"],
          "flow": "warp"}, "unknown_flow"),
    ])
    def test_deploy_rejections(self, payload, code):
        with pytest.raises(WireError) as exc_info:
            parse_deploy_request(payload)
        assert exc_info.value.status == 400
        assert exc_info.value.code == code

    def test_compile_rejects_deploy_fields(self):
        with pytest.raises(WireError) as exc_info:
            parse_compile_request({"source": "x", "targets": ["x86"]})
        assert "targets" in exc_info.value.message


# ---------------------------------------------------------------------------
# tenancy
# ---------------------------------------------------------------------------

class TestTenantTable:
    def table(self, clock=None):
        clock = clock or FakeClock()
        return TenantTable([
            Tenant("acme", api_key="k-acme", rate=10, burst=5,
                   clock=clock),
            Tenant("evil", api_key="k-evil", enabled=False,
                   clock=clock),
        ])

    def test_missing_key_is_401(self):
        with pytest.raises(WireError) as exc_info:
            self.table().authenticate(None)
        assert exc_info.value.status == 401

    def test_unknown_key_is_401(self):
        with pytest.raises(WireError) as exc_info:
            self.table().authenticate("nope")
        assert exc_info.value.status == 401

    def test_disabled_tenant_is_403(self):
        with pytest.raises(WireError) as exc_info:
            self.table().authenticate("k-evil")
        assert exc_info.value.status == 403

    def test_known_key_resolves(self):
        assert self.table().authenticate("k-acme").name == "acme"

    def test_charge_raises_429_with_retry_after(self):
        clock = FakeClock()
        tenant = Tenant("t", api_key="k", rate=2.0, burst=1,
                        clock=clock)
        tenant.charge()
        with pytest.raises(WireError) as exc_info:
            tenant.charge()
        assert exc_info.value.status == 429
        assert exc_info.value.retry_after == pytest.approx(0.5)
        assert tenant.stats.shed_quota == 1

    def test_from_config_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            TenantTable.from_config(
                {"tenants": [{"name": "a", "api_key": "k",
                              "rait": 10}]})

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError):
            TenantTable([Tenant("a", api_key="k"),
                         Tenant("b", api_key="k")])


# ---------------------------------------------------------------------------
# the server, over real sockets
# ---------------------------------------------------------------------------

def edge_config(**overrides) -> EdgeConfig:
    """Inline executors: tests exercise routing/admission, not pools."""
    defaults = dict(port=0, workers=2, queue_depth=8,
                    cold_executor="inline", warm_executor="inline")
    defaults.update(overrides)
    return EdgeConfig(**defaults)


def run_edge(config: EdgeConfig, scenario):
    """Boot an EdgeServer, run ``await scenario(edge)``, tear down."""
    async def main():
        async with EdgeServer(config) as edge:
            return await scenario(edge)
    return asyncio.run(main())


class TestEdgeServer:
    def test_healthz_needs_no_auth(self):
        table = TenantTable([Tenant("a", api_key="k")])
        async def scenario(edge):
            async with EdgeClient("127.0.0.1", edge.port) as client:
                return await client.healthz()
        status, _, body = run_edge(edge_config(tenants=table),
                                   scenario)
        assert status == 200
        assert body["status"] == "ok"

    def test_auth_failures_on_the_wire(self):
        table = TenantTable([
            Tenant("a", api_key="k-a"),
            Tenant("off", api_key="k-off", enabled=False)])
        async def scenario(edge):
            results = {}
            async with EdgeClient("127.0.0.1", edge.port) as client:
                results["missing"] = await client.deploy(
                    SAXPY, ["x86"])
            async with EdgeClient("127.0.0.1", edge.port,
                                  api_key="bogus") as client:
                results["unknown"] = await client.stats()
            async with EdgeClient("127.0.0.1", edge.port,
                                  api_key="k-off") as client:
                results["disabled"] = await client.deploy(
                    SAXPY, ["x86"])
            return results
        results = run_edge(edge_config(tenants=table), scenario)
        status, _, body = results["missing"]
        assert (status, body["error"]["code"]) == (401, "unauthorized")
        status, _, body = results["unknown"]
        assert (status, body["error"]["code"]) == (401, "unauthorized")
        status, _, body = results["disabled"]
        assert (status, body["error"]["code"]) == (403, "forbidden")

    def test_quota_429_carries_retry_after(self):
        table = TenantTable([Tenant("a", api_key="k-a", rate=0.001,
                                    burst=1)])
        async def scenario(edge):
            async with EdgeClient("127.0.0.1", edge.port,
                                  api_key="k-a") as client:
                first = await client.deploy(SAXPY, ["x86"], name="m")
                second = await client.deploy(SAXPY, ["x86"], name="m")
                _, _, stats = await client.request(
                    "GET", "/stats")
            return first, second, stats
        # the stats call itself would be charged too — but its bucket
        # is already empty, so fetch stats through a second tenant?
        # No: /stats auth succeeds but charge() only guards work
        # endpoints, so the empty bucket does not block it.
        first, second, stats = run_edge(edge_config(tenants=table),
                                        scenario)
        assert first[0] == 200
        status, headers, body = second
        assert status == 429
        assert body["error"]["code"] == "quota_exhausted"
        assert int(headers["retry-after"]) >= 1
        tenant = stats["edge"]["tenants"]["a"]
        assert tenant["shed"]["quota"] == 1
        assert tenant["accepted"] == 1

    def test_tenant_isolation(self):
        """Tenant A saturating its own quota never sheds tenant B."""
        table = TenantTable([
            Tenant("a", api_key="k-a", rate=0.001, burst=1),
            Tenant("b", api_key="k-b", rate=1000, burst=1000)])
        async def scenario(edge):
            async with EdgeClient("127.0.0.1", edge.port,
                                  api_key="k-a") as a, \
                    EdgeClient("127.0.0.1", edge.port,
                               api_key="k-b") as b:
                a_statuses = []
                for index in range(5):
                    status, _, _ = await a.deploy(
                        SAXPY, ["x86"], name=f"a{index}")
                    a_statuses.append(status)
                b_statuses = []
                for index in range(5):
                    status, _, _ = await b.deploy(
                        SAXPY, ["x86"], name="b")
                    b_statuses.append(status)
                _, _, stats = await b.stats()
            return a_statuses, b_statuses, stats
        a_statuses, b_statuses, stats = run_edge(
            edge_config(tenants=table), scenario)
        assert a_statuses == [200, 429, 429, 429, 429]
        assert b_statuses == [200] * 5
        tenants = stats["edge"]["tenants"]
        assert tenants["a"]["shed"]["quota"] == 4
        assert tenants["b"]["shed"]["total"] == 0
        assert tenants["b"]["accepted"] == 5

    def test_bounded_queue_sheds_under_herd(self):
        """Distinct requests past the queue bound get structured
        503 queue_full with Retry-After; admitted ones complete."""
        async def scenario(edge):
            real_submit = edge.service.submit
            async def slow_submit(request):
                await asyncio.sleep(0.25)
                return await real_submit(request)
            edge.service.submit = slow_submit

            async def one(index):
                async with EdgeClient("127.0.0.1",
                                      edge.port) as client:
                    return await client.deploy(
                        SAXPY, ["x86"], name=f"m{index}")
            results = await asyncio.gather(*(one(i) for i in range(8)))
            _, _, stats = await EdgeClient(
                "127.0.0.1", edge.port).stats()
            return results, stats
        results, stats = run_edge(
            edge_config(workers=1, queue_depth=2, max_wait_s=None),
            scenario)
        statuses = [status for status, _, _ in results]
        accepted = [r for r in results if r[0] == 200]
        shed = [r for r in results if r[0] == 503]
        assert len(accepted) >= 1
        assert len(shed) >= 1
        assert len(accepted) + len(shed) == 8
        for status, headers, body in shed:
            assert body["error"]["code"] == "queue_full"
            assert int(headers["retry-after"]) >= 1
            assert body["error"]["queue_capacity"] == 2
        for status, _, body in accepted:
            assert body["deployments"]["x86"]["ok"]
        assert stats["edge"]["shed"]["queue_full"] == len(shed)

    def test_identical_herd_coalesces_onto_one_queue_slot(self):
        """A thundering herd of *identical* requests consumes one
        queue slot and one compile; every caller gets the result."""
        async def scenario(edge):
            real_submit = edge.service.submit
            async def slow_submit(request):
                await asyncio.sleep(0.2)
                return await real_submit(request)
            edge.service.submit = slow_submit

            async def one():
                async with EdgeClient("127.0.0.1",
                                      edge.port) as client:
                    return await client.deploy(SAXPY, ["x86"],
                                               name="same")
            results = await asyncio.gather(*(one() for _ in range(6)))
            _, _, stats = await EdgeClient(
                "127.0.0.1", edge.port).stats()
            return results, stats
        results, stats = run_edge(
            edge_config(workers=1, queue_depth=1, max_wait_s=None),
            scenario)
        assert [status for status, _, _ in results] == [200] * 6
        edge_stats = stats["edge"]
        assert edge_stats["accepted"] == 6
        assert edge_stats["coalesced"] == 5
        assert edge_stats["shed"]["total"] == 0

    def test_stats_shape(self):
        async def scenario(edge):
            async with EdgeClient("127.0.0.1", edge.port) as client:
                await client.deploy(SAXPY, ["x86", "arm"], name="m")
                return await client.stats()
        _, _, stats = run_edge(edge_config(), scenario)
        edge_stats = stats["edge"]
        assert edge_stats["requests"] == 1
        assert edge_stats["latency"]["count"] == 1
        assert edge_stats["queue"]["capacity"] == 8
        assert edge_stats["routes"]["policy"] == "first-fanout-cold"
        assert stats["service"]["artifact"]["facts_warm"] == 0
        assert "vm" in stats["tier2"] and "sim" in stats["tier2"]

    def test_malformed_json_and_bad_routes(self):
        async def scenario(edge):
            async with EdgeClient("127.0.0.1", edge.port) as client:
                results = {}
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", edge.port)
                writer.write(b"POST /deploy HTTP/1.1\r\n"
                             b"Content-Length: 9\r\n\r\nnot json!")
                await writer.drain()
                line = await reader.readline()
                results["bad_json"] = int(
                    line.decode().split(" ")[1])
                writer.close()
                results["not_found"] = (await client.request(
                    "GET", "/nope"))[0]
                results["bad_method"] = (await client.request(
                    "POST", "/healthz"))[0]
            return results
        results = run_edge(edge_config(), scenario)
        assert results["bad_json"] == 400
        assert results["not_found"] == 404
        assert results["bad_method"] == 405

    def test_source_errors_are_422_not_500(self):
        async def scenario(edge):
            async with EdgeClient("127.0.0.1", edge.port) as client:
                return await client.deploy("this is ( not dsl",
                                           ["x86"])
        status, _, body = run_edge(edge_config(), scenario)
        assert status == 422
        assert body["error"]["code"] == "compile_error"


# ---------------------------------------------------------------------------
# adaptive routing
# ---------------------------------------------------------------------------

class TestAdaptiveRouting:
    def test_first_fanout_cold_then_warm(self):
        from repro.service import CompilationService
        executor = AdaptiveExecutor(cold="inline", warm="inline")
        service = CompilationService(executor=executor)
        try:
            artifact = service.compile(SAXPY, "m").artifact
            service.deploy_many(artifact, ["x86", "arm", "dsp"])
            after_first = executor.route_counters()
            # new targets on a now-warm artifact ride the warm route
            service.deploy_many(artifact, ["ppc", "sparc"])
            after_second = executor.route_counters()
        finally:
            service.shutdown()
        assert after_first["cold"]["submitted"] >= 1
        assert after_second["warm"]["submitted"] - \
            after_first["warm"]["submitted"] == 2
        assert after_second["known_artifacts"] == 1

    def test_distinct_artifacts_classify_independently(self):
        executor = AdaptiveExecutor(cold="inline", warm="inline")
        from repro.service import CompilationService
        service = CompilationService(executor=executor)
        try:
            first = service.compile(SAXPY, "m1").artifact
            second = service.compile(SUM_U8, "m2").artifact
            service.deploy(first, "x86")
            assert executor.classify(second) == "cold"
            assert executor.classify(first) == "warm"
        finally:
            service.shutdown()

    def test_memo_hits_never_reach_the_executor(self):
        from repro.service import CompilationService
        executor = AdaptiveExecutor(cold="inline", warm="inline")
        service = CompilationService(executor=executor)
        try:
            artifact = service.compile(SAXPY, "m").artifact
            service.deploy_many(artifact, ["x86"])
            before = executor.route_counters()
            service.deploy_many(artifact, ["x86"])    # memoized
            after = executor.route_counters()
        finally:
            service.shutdown()
        total = lambda c: (c["cold"]["submitted"] +
                           c["warm"]["submitted"])
        assert total(after) == total(before)
