"""Smoke-run every example script (they are part of the public API
surface; a refactor that breaks one should fail the suite)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must narrate their output"
