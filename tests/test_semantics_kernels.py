"""Kernel-table parity: every specialized kernel must behave exactly
like the reference ladder in ``repro.semantics.scalar`` — values,
traps and trap messages — across all (op, type) pairs and a value grid
covering wrap-around, signedness and IEEE edge cases."""

import math

import pytest

from repro.bytecode.opcodes import BIN_OPS, CMP_PREDS, UN_OPS
from repro.lang import types as ty
from repro.semantics import (
    TrapError, eval_binop, eval_cast, eval_cmp, eval_unop, vec_binop,
)
from repro.semantics.kernels import (
    SCALAR_TYPES, binop_kernel, cast_kernel, cmp_kernel, identity_kernel,
    unop_kernel, vec_binop_kernel,
)


def _int_values(int_ty):
    lo, hi = ty.int_min(int_ty), ty.int_max(int_ty)
    return [lo, lo + 1, -7, -1, 0, 1, 2, 3, 7, hi - 1, hi]


_FLOAT_VALUES = [0.0, -0.0, 1.0, -1.5, 3.25, -1e3, 1e3,
                 math.inf, -math.inf, math.nan]


def _values_for(value_ty):
    if isinstance(value_ty, ty.IntType):
        return [v for v in _int_values(value_ty)
                if ty.int_min(value_ty) <= v <= ty.int_max(value_ty)]
    return _FLOAT_VALUES


def _outcome(fn, *args):
    try:
        return ("ok", repr(fn(*args)))
    except TrapError as exc:
        return ("trap", str(exc))
    except OverflowError as exc:        # f32 pack of huge values —
        return ("overflow", str(exc))   # raised by both implementations


class TestBinopParity:
    @pytest.mark.parametrize("value_ty", SCALAR_TYPES, ids=str)
    @pytest.mark.parametrize("op", BIN_OPS)
    def test_kernel_matches_reference(self, op, value_ty):
        if isinstance(value_ty, ty.FloatType) and \
                op not in ("add", "sub", "mul", "div", "min", "max"):
            return                      # undefined either way; below
        kernel = binop_kernel(op, value_ty)
        for a in _values_for(value_ty):
            for b in _values_for(value_ty):
                assert _outcome(kernel, a, b) == \
                    _outcome(eval_binop, op, value_ty, a, b), \
                    (op, value_ty, a, b)

    def test_undefined_op_falls_back_to_reference_trap(self):
        kernel = binop_kernel("frobnicate", ty.I32)
        with pytest.raises(TrapError, match="frobnicate"):
            kernel(1, 2)
        kernel = binop_kernel("rem", ty.F32)    # no float rem
        with pytest.raises(TrapError):
            kernel(1.0, 2.0)

    def test_division_trap_messages(self):
        for value_ty in (ty.I8, ty.U32, ty.I64):
            with pytest.raises(TrapError,
                               match="integer division by zero"):
                binop_kernel("div", value_ty)(5, 0)
            with pytest.raises(TrapError,
                               match="integer remainder by zero"):
                binop_kernel("rem", value_ty)(5, 0)


class TestCmpParity:
    @pytest.mark.parametrize("value_ty", SCALAR_TYPES, ids=str)
    @pytest.mark.parametrize("pred", CMP_PREDS)
    def test_kernel_matches_reference(self, pred, value_ty):
        kernel = cmp_kernel(pred, value_ty)
        for a in _values_for(value_ty):
            for b in _values_for(value_ty):
                assert kernel(a, b) == eval_cmp(pred, value_ty, a, b), \
                    (pred, value_ty, a, b)

    def test_nan_unordered_semantics(self):
        assert cmp_kernel("ne", ty.F32)(math.nan, 1.0) == 1
        assert cmp_kernel("eq", ty.F64)(math.nan, math.nan) == 0
        assert cmp_kernel("le", ty.F32)(math.nan, math.nan) == 0

    def test_unsigned_compares_on_bit_patterns(self):
        # -1 as u32 is 0xFFFFFFFF, the largest value
        assert cmp_kernel("gt", ty.U32)(-1, 1) == 1
        assert eval_cmp("gt", ty.U32, -1, 1) == 1


class TestUnopParity:
    @pytest.mark.parametrize("value_ty", SCALAR_TYPES, ids=str)
    @pytest.mark.parametrize("op", UN_OPS)
    def test_kernel_matches_reference(self, op, value_ty):
        if op == "not" and isinstance(value_ty, ty.FloatType):
            return                       # reference asserts IntType
        kernel = unop_kernel(op, value_ty)
        for a in _values_for(value_ty):
            assert _outcome(kernel, a) == \
                _outcome(eval_unop, op, value_ty, a), (op, value_ty, a)


class TestCastParity:
    @pytest.mark.parametrize("to_ty", SCALAR_TYPES, ids=str)
    @pytest.mark.parametrize("from_ty", SCALAR_TYPES, ids=str)
    def test_kernel_matches_reference(self, from_ty, to_ty):
        kernel = cast_kernel(from_ty, to_ty)
        for value in _values_for(from_ty):
            assert _outcome(kernel, value) == \
                _outcome(eval_cast, value, from_ty, to_ty), \
                (from_ty, to_ty, value)

    def test_widening_casts_are_the_shared_identity(self):
        # the engines elide these at decode time, so the contract that
        # they are value-preserving is identity *by object*
        assert cast_kernel(ty.I32, ty.I64) is identity_kernel
        assert cast_kernel(ty.U8, ty.I32) is identity_kernel
        assert cast_kernel(ty.U16, ty.U64) is identity_kernel
        # narrowing / signedness flips must not be elided
        assert cast_kernel(ty.I64, ty.I32) is not identity_kernel
        assert cast_kernel(ty.I32, ty.U32) is not identity_kernel
        assert cast_kernel(ty.I8, ty.U64) is not identity_kernel

    def test_float_special_values_to_int(self):
        kernel = cast_kernel(ty.F64, ty.I32)
        assert kernel(math.nan) == 0
        assert kernel(math.inf) == 0
        assert kernel(-math.inf) == 0
        assert kernel(-2.75) == -2


class TestVectorKernelParity:
    LANE_CASES = {
        ty.U8: ([250, 1, 17, 255], [10, 2, 300 % 256, 1]),
        ty.I16: ([32767, -32768, -5, 9], [1, -1, 5, 9]),
        ty.I32: ([2**31 - 1, -2**31, 0, 42], [1, -1, 7, -42]),
        ty.F32: ([1.5, -2.25, 1e30, 0.1], [2.5, 0.5, 1e30, 0.2]),
        ty.F64: ([1.5, -2.25], [2.5, 0.5]),
    }

    @pytest.mark.parametrize("op", BIN_OPS)
    def test_lane_kernels_match_reference(self, op):
        for elem_ty, (a, b) in self.LANE_CASES.items():
            if isinstance(elem_ty, ty.FloatType) and \
                    op not in ("add", "sub", "mul", "div", "min", "max"):
                continue
            kernel = vec_binop_kernel(op, elem_ty)
            assert _outcome(kernel, a, b) == \
                _outcome(vec_binop, op, elem_ty, a, b), (op, elem_ty)

    def test_lane_count_mismatch_traps(self):
        for elem_ty in (ty.U8, ty.F32):
            kernel = vec_binop_kernel("add", elem_ty)
            with pytest.raises(TrapError, match="lane count mismatch"):
                kernel([1, 2, 3], [1, 2])

    def test_f32_quad_rounding_matches_scalar(self):
        # the 4-lane f32 fast path rounds through one <4f> round trip;
        # results must equal the per-lane scalar kernel bit for bit
        kernel = vec_binop_kernel("mul", ty.F32)
        scalar = binop_kernel("mul", ty.F32)
        a = [1.1, -2.2, 3.3, 1e18]
        b = [7.7, 0.3, -9.9, 1e18]
        assert kernel(a, b) == [scalar(x, y) for x, y in zip(a, b)]
