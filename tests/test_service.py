"""Unit tests for the compilation service (cache, deployment, stats)."""

from __future__ import annotations

import pathlib
import threading
import time

import pytest

from repro.core import deploy, offline_compile
from repro.core.offline import OfflineArtifact
from repro.semantics import Memory
from repro.service import (
    ArtifactCache, CompilationService, CompileRequest, artifact_key,
    canonical_options, deserialize_artifact, serialize_artifact,
)
from repro.service.cache import artifact_fingerprint
from repro.targets import Simulator, X86
from repro.targets.catalog import TARGETS
from repro.workloads import TABLE1

SAXPY = TABLE1["saxpy_fp"].source
SUM_U8 = TABLE1["sum_u8"].source
ALL_TARGETS = list(TARGETS.values())


@pytest.fixture
def service():
    svc = CompilationService(cache_capacity=8)
    yield svc
    svc.shutdown()


# ---------------------------------------------------------------------------
# cache keys
# ---------------------------------------------------------------------------

class TestCacheKey:
    def test_key_is_stable(self):
        assert artifact_key(SAXPY) == artifact_key(SAXPY)

    def test_explicit_defaults_hash_like_implicit(self):
        assert artifact_key(SAXPY) == artifact_key(
            SAXPY, options={"optimize": True, "do_vectorize": True})

    def test_source_changes_key(self):
        assert artifact_key(SAXPY) != artifact_key(SUM_U8)

    def test_name_changes_key(self):
        assert artifact_key(SAXPY, "a") != artifact_key(SAXPY, "b")

    def test_options_change_key(self):
        assert artifact_key(SAXPY) != \
            artifact_key(SAXPY, options={"do_vectorize": False})

    def test_hotness_is_order_insensitive(self):
        assert artifact_key(SAXPY, options={"hotness": {"a": 1, "b": 2}}) \
            == artifact_key(SAXPY, options={"hotness": {"b": 2, "a": 1}})

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="unknown offline option"):
            canonical_options({"opt_level": 3})

    def test_fingerprint_distinguishes_artifacts(self):
        a = offline_compile(SAXPY)
        b = offline_compile(SUM_U8)
        assert artifact_fingerprint(a) != artifact_fingerprint(b)


# ---------------------------------------------------------------------------
# LRU + stats
# ---------------------------------------------------------------------------

class TestLRU:
    def make(self, name: str) -> OfflineArtifact:
        return offline_compile(SAXPY, name, do_vectorize=False,
                               optimize=False)

    def test_eviction_drops_least_recent(self):
        # shards=1: strict global LRU ordering is the property under
        # test (sharded recency is per-shard by design)
        cache = ArtifactCache(capacity=2, shards=1)
        for key in ("k1", "k2", "k3"):
            cache.put(key, self.make(key))
        assert "k1" not in cache
        assert "k2" in cache and "k3" in cache
        assert cache.stats.evictions == 1

    def test_get_refreshes_recency(self):
        cache = ArtifactCache(capacity=2, shards=1)
        cache.put("k1", self.make("k1"))
        cache.put("k2", self.make("k2"))
        assert cache.get("k1") is not None     # k2 is now least recent
        cache.put("k3", self.make("k3"))
        assert "k1" in cache and "k2" not in cache

    def test_stats_counters(self):
        cache = ArtifactCache(capacity=2)
        assert cache.get("missing") is None
        cache.put("k1", self.make("k1"))
        assert cache.get("k1") is not None
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.stores == 1
        assert cache.stats.hit_rate == 0.5

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ArtifactCache(capacity=0)


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------

class TestPersistence:
    def test_serialize_roundtrip_preserves_everything(self):
        artifact = offline_compile(SAXPY, "persisted",
                                   hotness={"saxpy": 9})
        revived = deserialize_artifact(serialize_artifact(artifact))
        assert revived.name == artifact.name
        assert revived.offline_work == artifact.offline_work
        assert revived.vectorized_functions == \
            artifact.vectorized_functions
        assert serialize_artifact(revived) == serialize_artifact(artifact)

    def test_facts_tables_persist_with_the_artifact(self):
        """Revived artifacts carry their dataflow facts: every
        bytecode function answers ``fresh=False`` — the analysis ran
        once, offline, and the wire carried its results."""
        from repro.analysis.facts import bytecode_facts
        artifact = offline_compile(SAXPY, "facts")
        # populate the analysis caches, then roundtrip
        for func in artifact.bytecode.functions.values():
            bytecode_facts(func)
        revived = deserialize_artifact(serialize_artifact(artifact))
        for func in revived.bytecode.functions.values():
            facts, fresh = bytecode_facts(func)
            assert not fresh
        # and the restored tables match a from-scratch analysis
        for name, func in revived.bytecode.functions.items():
            restored, _ = bytecode_facts(func)
            computed, _ = bytecode_facts(
                artifact.bytecode.functions[name])
            assert restored == computed

    def test_facts_roundtrip_is_byte_identical(self):
        """The facts sidecar must not break the byte-identity
        contract (canonical JSON, not pickle: set order is pinned)."""
        artifact = offline_compile(SAXPY, "facts-bytes")
        blob = serialize_artifact(artifact)
        revived = deserialize_artifact(blob)
        assert serialize_artifact(revived) == blob

    def test_warm_start_counts_facts_warm(self, tmp_path):
        """A second service over the same persist dir revives facts
        from disk and surfaces the count in its stats."""
        cold = CompilationService(cache_capacity=4,
                                  persist_dir=tmp_path)
        try:
            cold.compile(SAXPY, "w")
        finally:
            cold.shutdown()
        warm = CompilationService(cache_capacity=4,
                                  persist_dir=tmp_path)
        try:
            warm.compile(SAXPY, "w")
            stats = warm.stats()
            assert stats.artifact_disk_hits == 1
            assert stats.artifact_facts_warm > 0
            assert stats.as_dict()["artifact"]["facts_warm"] > 0
        finally:
            warm.shutdown()

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="bad magic"):
            deserialize_artifact(b"NOPE" + b"\x00" * 16)

    def test_corrupt_disk_entry_degrades_to_miss(self, tmp_path):
        svc = CompilationService(cache_capacity=1, persist_dir=tmp_path)
        try:
            svc.compile(SAXPY, "one")
            entry = next(tmp_path.rglob("*.pvia"))
            entry.write_bytes(entry.read_bytes()[:40])   # truncate
            svc.cache.clear()
            outcome = svc.compile(SAXPY, "one")          # must recompile
            assert not outcome.cache_hit
            assert svc.cache.stats.corrupt_entries == 1
            # the recompile re-persisted a healthy entry
            svc.cache.clear()
            assert svc.compile(SAXPY, "one").cache_hit
        finally:
            svc.shutdown()

    def test_unreadable_entry_is_io_error_not_corruption(
            self, tmp_path, monkeypatch):
        """A persist entry that cannot be *read* (permissions, I/O)
        says nothing about its content: it must degrade to a miss,
        count as an ``io_error`` — never as corruption — and must not
        be self-heal-deleted (the bytes may be perfectly fine)."""
        svc = CompilationService(cache_capacity=1, persist_dir=tmp_path)
        try:
            svc.compile(SAXPY, "one")
            entry = next(tmp_path.rglob("*.pvia"))
            svc.cache.clear()
            # Tests run as root, so chmod(0o000) would not deny the
            # read; fail it at the Path layer instead.
            monkeypatch.setattr(
                pathlib.Path, "read_bytes",
                lambda self: (_ for _ in ()).throw(
                    PermissionError(13, "denied", str(self))))
            outcome = svc.compile(SAXPY, "one")     # recompiles
            assert not outcome.cache_hit
            stats = svc.cache.stats
            assert stats.io_errors >= 1
            assert stats.corrupt_entries == 0
            assert entry.exists(), "read failure must not unlink"
            # surfaced through the service snapshot too
            snapshot = svc.stats()
            assert snapshot.artifact_io_errors == stats.io_errors
            assert snapshot.as_dict()["artifact"]["io_errors"] == \
                stats.io_errors
        finally:
            svc.shutdown()

    def test_read_only_persist_dir_does_not_miss_loop(
            self, tmp_path, monkeypatch):
        """An unwritable persist dir must not fail the compile, and —
        since the in-memory store still works — repeated compiles must
        be cache hits, not a silent recompile loop."""
        monkeypatch.setattr(
            pathlib.Path, "write_bytes",
            lambda self, data: (_ for _ in ()).throw(
                PermissionError(13, "denied", str(self))))
        svc = CompilationService(cache_capacity=4, persist_dir=tmp_path)
        try:
            first = svc.compile(SAXPY, "ro")
            assert not first.cache_hit
            assert svc.cache.stats.io_errors >= 1
            assert svc.cache.stats.corrupt_entries == 0
            # the failed persist left the in-memory entry intact
            for _ in range(3):
                assert svc.compile(SAXPY, "ro").cache_hit
            assert svc.cache.stats.misses == 1
        finally:
            svc.shutdown()

    def test_disk_revival_after_eviction(self, tmp_path):
        svc = CompilationService(cache_capacity=1, persist_dir=tmp_path)
        try:
            svc.compile(SAXPY, "one")
            svc.compile(SUM_U8, "two")     # evicts "one" from memory
            outcome = svc.compile(SAXPY, "one")
            assert outcome.cache_hit
            assert svc.cache.stats.disk_hits == 1
            # the revived artifact deploys identically to a fresh one
            fresh = deploy(offline_compile(SAXPY, "one"), X86, "split")
            revived = svc.deploy(outcome.artifact, X86, "split")
            assert [repr(i) for i in revived["saxpy"].code] == \
                [repr(i) for i in fresh["saxpy"].code]
        finally:
            svc.shutdown()


# ---------------------------------------------------------------------------
# the service facade
# ---------------------------------------------------------------------------

class TestService:
    def test_repeat_compile_hits_cache(self, service):
        first = service.compile(SAXPY)
        second = service.compile(SAXPY)
        assert not first.cache_hit and second.cache_hit
        assert first.artifact is second.artifact

    def test_deploy_memoizes_per_target_and_flow(self, service):
        artifact = service.artifact(SAXPY)
        split = service.deploy(artifact, X86, "split")
        assert service.deploy(artifact, X86, "split") is split
        assert service.deploy(artifact, X86, "offline-only") is not split
        stats = service.stats()
        assert stats.deploy_compiles == 2
        assert stats.deploy_memo_hits == 1

    def test_deploy_through_core_online(self, service):
        artifact = service.artifact(SAXPY)
        a = deploy(artifact, X86, "split", service=service)
        b = deploy(artifact, X86, "split", service=service)
        assert a is b
        # without a service every deploy is a fresh JIT
        assert deploy(artifact, X86, "split") is not a

    def test_unknown_flow_rejected(self, service):
        artifact = service.artifact(SAXPY)
        with pytest.raises(ValueError, match="unknown flow"):
            service.deploy_many(artifact, ALL_TARGETS, "hybrid")

    def test_submit_reports_hits_and_latency(self, service):
        request = CompileRequest(source=SAXPY, name="m",
                                 targets=ALL_TARGETS, flow="split")
        first = service.submit(request)
        second = service.submit(request)
        assert not first.artifact_cache_hit and not first.fully_cached
        assert second.artifact_cache_hit and second.fully_cached
        assert sorted(first.target_names) == sorted(TARGETS)
        assert first.total_latency > 0
        assert all(d.latency > 0 for d in first.deployments.values())
        assert all(d.memo_hit for d in second.deployments.values())

    def test_submit_batch(self, service):
        results = service.submit_batch([
            CompileRequest(source=SAXPY, name="m", targets=[X86]),
            CompileRequest(source=SAXPY, name="m", targets=[X86]),
        ])
        assert len(results) == 2
        assert results[1].fully_cached


# ---------------------------------------------------------------------------
# latency accounting for coalesced requests
# ---------------------------------------------------------------------------

class TestCoalescedWait:
    def test_joiners_add_wait_not_compile_latency(self, monkeypatch):
        """N requests coalescing onto one in-flight compile must leave
        the offline latency total at ~one compile's worth; the
        joiners' wall clock lands in ``coalesced_wait`` instead."""
        import repro.service as service_mod
        real = service_mod.offline_compile
        svc = CompilationService(cache_capacity=4)
        joiners = 4

        def slow(source, name="module", **options):
            # Hold the compile open until every joiner has actually
            # joined the in-flight future, so each one's measured
            # latency covers a real wait.
            deadline = time.monotonic() + 5.0
            while svc._coalesced < joiners and \
                    time.monotonic() < deadline:
                time.sleep(0.002)
            return real(source, name, **options)

        monkeypatch.setattr(service_mod, "offline_compile", slow)
        try:
            outcomes = []
            barrier = threading.Barrier(joiners + 1)

            def worker():
                barrier.wait()
                outcomes.append(svc.compile(SAXPY, "herd"))

            threads = [threading.Thread(target=worker)
                       for _ in range(joiners + 1)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = svc.stats()
            assert stats.coalesced_requests == joiners
            assert sum(1 for o in outcomes if not o.cache_hit) == 1
            # every joiner waited for (most of) the compile, so the
            # wait bucket dwarfs the single compile charged to the
            # offline total
            assert stats.total_coalesced_wait > \
                stats.total_offline_latency
            assert stats.as_dict()["latency"]["coalesced_wait_s"] == \
                stats.total_coalesced_wait
        finally:
            svc.shutdown()

    def test_fully_memoized_submit_charges_wait(self, service):
        """A repeat submit whose every target rides the deployment
        memo did no JIT work: its fan-out wall clock belongs to
        ``coalesced_wait``, not the deploy latency total."""
        request = CompileRequest(source=SAXPY, name="m",
                                 targets=[X86], flow="split")
        service.submit(request)
        before = service.stats()
        second = service.submit(request)
        assert second.fully_cached
        after = service.stats()
        assert after.total_deploy_latency == before.total_deploy_latency
        assert after.total_coalesced_wait > before.total_coalesced_wait


# ---------------------------------------------------------------------------
# concurrency
# ---------------------------------------------------------------------------

class TestConcurrentDeployment:
    def _simulate(self, compiled, n=64, seed=7):
        kernel = TABLE1["saxpy_fp"]
        memory = Memory(1 << 21)
        run = kernel.prepare(memory, n, seed)
        result = Simulator(compiled, memory).run(kernel.entry, run.args)
        outputs = [memory.read_array(t, addr, count)
                   for t, addr, count in run.outputs]
        return repr(result.value), [repr(o) for o in outputs], \
            result.cycles

    def test_concurrent_matches_serial_deploy(self, service):
        """The fan-out must be an optimization, not a semantic change."""
        artifact = service.artifact(SAXPY)
        concurrent = service.deploy_many(artifact, ALL_TARGETS, "split")
        for target in ALL_TARGETS:
            serial = deploy(artifact, target, "split")
            image = concurrent[target.name]
            assert [repr(i) for i in image["saxpy"].code] == \
                [repr(i) for i in serial["saxpy"].code]
            assert self._simulate(image) == self._simulate(serial)

    def test_duplicate_targets_compile_once(self, service):
        artifact = service.artifact(SAXPY)
        catalog = [X86, X86, X86]
        images = service.deploy_many(artifact, catalog, "split")
        assert len(images) == 1
        assert service.stats().deploy_compiles == 1

    def test_same_name_different_target_not_aliased(self, service):
        """Memo keys cover the whole TargetDesc, not just its name."""
        from dataclasses import replace
        artifact = service.artifact(SAXPY)
        full = service.deploy(artifact, X86, "split")
        squeezed = service.deploy(artifact, replace(X86, int_regs=4),
                                  "split")
        assert squeezed is not full
        assert service.stats().deploy_compiles == 2
        assert squeezed["saxpy"].spill_slot_count > \
            full["saxpy"].spill_slot_count

    def test_failed_compile_is_not_poisoned(self, service):
        """A raising deploy must not stick in the memo forever."""
        artifact = service.artifact(SAXPY)
        original = service.pool._compile
        calls = []

        def flaky(artifact, target, flow):
            calls.append(flow)
            if len(calls) == 1:
                raise MemoryError("transient")
            return original(artifact, target, flow)

        service.pool._compile = flaky
        with pytest.raises(MemoryError):
            service.deploy(artifact, X86, "split")
        assert service.pool.cached_image(artifact, X86, "split") is None
        image = service.deploy(artifact, X86, "split")   # retried
        assert image["saxpy"].code
        assert len(calls) == 2

    def test_image_memo_is_bounded(self):
        from repro.service import DeploymentPool
        pool = DeploymentPool(max_images=2)
        try:
            artifact = offline_compile(SAXPY)
            for target in ALL_TARGETS[:4]:
                pool.deploy_one(artifact, target, "split")
            assert len(pool.known_keys()) <= 2
            assert pool.stats.evictions >= 2
        finally:
            pool.shutdown()

    def test_racing_threads_share_one_image(self, service):
        artifact = service.artifact(SAXPY)
        images = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            images.append(service.deploy(artifact, X86, "split"))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(images) == 8
        assert all(image is images[0] for image in images)
        assert service.stats().deploy_compiles == 1


# ---------------------------------------------------------------------------
# sharded cache
# ---------------------------------------------------------------------------

class TestShardedCache:
    def make(self, name: str) -> OfflineArtifact:
        return offline_compile(SAXPY, name, do_vectorize=False,
                               optimize=False)

    def test_routing_is_deterministic_and_total(self):
        cache = ArtifactCache(capacity=16, shards=4)
        keys = [artifact_key(SAXPY, f"k{i}") for i in range(32)]
        for key in keys:
            assert cache._shard_for(key) is cache._shard_for(key)
        owners = {id(cache._shard_for(key)) for key in keys}
        assert len(owners) > 1, "sha256 keys must spread over shards"

    def test_capacity_is_divided_across_shards(self):
        cache = ArtifactCache(capacity=8, shards=4)
        assert cache.shard_count == 4
        assert all(shard.capacity == 2 for shard in cache._shards)

    def test_aggregated_stats_sum_shards(self):
        cache = ArtifactCache(capacity=8, shards=4)
        artifact = self.make("a")
        keys = [artifact_key(SAXPY, f"k{i}") for i in range(8)]
        for key in keys:
            cache.put(key, artifact)
        # an unlucky hash spread may overflow one 2-entry shard; the
        # survivors must all be served, the evicted ones are misses
        present = [key for key in keys if key in cache]
        assert present, "at least some keys must survive"
        for key in present:
            assert cache.get(key) is not None
        assert cache.get("missing-key") is None
        stats = cache.stats
        assert stats.stores == 8
        assert stats.hits == len(present)
        assert stats.misses == 1
        assert stats.evictions == 8 - len(present)
        per_shard = cache.shard_stats()
        assert len(per_shard) == 4
        assert sum(s.stores for s in per_shard) == stats.stores
        assert sum(s.hits for s in per_shard) == stats.hits

    def test_shard_disk_dirs_and_legacy_fallback(self, tmp_path):
        sharded = ArtifactCache(capacity=4, shards=4,
                                persist_dir=tmp_path)
        key = artifact_key(SAXPY, "persisted")
        sharded.put(key, offline_compile(SAXPY, "persisted"))
        shard_files = list(tmp_path.rglob("*.pvia"))
        assert len(shard_files) == 1
        assert shard_files[0].parent.name.startswith("shard-")
        # a fresh cache (new process, same dir) revives from its shard
        revived = ArtifactCache(capacity=4, shards=4,
                                persist_dir=tmp_path)
        assert revived.get(key) is not None
        assert revived.stats.disk_hits == 1
        # a pre-shard flat entry is still readable (legacy fallback)
        flat_key = artifact_key(SAXPY, "flat-era")
        (tmp_path / f"{flat_key}.pvia").write_bytes(
            serialize_artifact(offline_compile(SAXPY, "flat-era")))
        assert revived.get(flat_key) is not None


class TestConcurrentEvictionRaces:
    """Satellite: hammer a tiny sharded cache from 8 threads and
    prove no lost updates, no compile work beyond dedup misses, and
    disk-entry self-healing."""

    def test_no_lost_updates_under_eviction_pressure(self, tmp_path):
        cache = ArtifactCache(capacity=2, shards=2,
                              persist_dir=tmp_path)
        artifacts = {f"w{i}": offline_compile(SAXPY, f"w{i}",
                                              optimize=False,
                                              do_vectorize=False)
                     for i in range(6)}
        keys = {name: artifact_key(SAXPY, name)
                for name in artifacts}
        rounds = 30
        errors = []
        barrier = threading.Barrier(8)

        def worker(seed):
            try:
                barrier.wait()
                names = list(artifacts)
                for i in range(rounds):
                    name = names[(seed + i) % len(names)]
                    cache.put(keys[name], artifacts[name])
                    got = cache.get(keys[name])
                    # eviction may race the get; a miss is legal,
                    # a *wrong* artifact never is
                    if got is not None and got.name != name:
                        errors.append((name, got.name))
            except Exception as exc:            # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,))
                   for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors, errors
        # in-memory cache is over capacity by at most nothing; every
        # entry remains reachable through its disk shard (no lost
        # updates even for evicted keys)
        assert len(cache) <= 2 * cache.shard_count
        for name, key in keys.items():
            revived = cache.get(key)
            assert revived is not None and revived.name == name
        stats = cache.stats
        assert stats.stores == 8 * rounds
        assert stats.corrupt_entries == 0

    def test_disk_entries_self_heal_after_corruption(self, tmp_path):
        svc = CompilationService(cache_capacity=2, cache_shards=2,
                                 persist_dir=tmp_path,
                                 executor="inline")
        try:
            for i in range(4):
                svc.compile(SAXPY, f"m{i}")
            paths = sorted(tmp_path.rglob("*.pvia"))
            assert len(paths) == 4
            for path in paths:
                path.write_bytes(path.read_bytes()[:32])  # truncate all
            svc.cache.clear()
            for i in range(4):
                outcome = svc.compile(SAXPY, f"m{i}")    # recompiles
                assert not outcome.cache_hit
            assert svc.cache.stats.corrupt_entries == 4
            # the recompiles re-persisted healthy entries
            svc.cache.clear()
            for i in range(4):
                assert svc.compile(SAXPY, f"m{i}").cache_hit
        finally:
            svc.shutdown()

    def test_no_double_compile_beyond_dedup_misses(self):
        """8 threads racing the same request: the offline in-flight
        dedup and the pool's future dedup must keep actual compiles
        at one each."""
        svc = CompilationService(cache_capacity=4)
        try:
            barrier = threading.Barrier(8)
            results = []
            errors = []

            def worker():
                try:
                    barrier.wait()
                    results.append(svc.submit(CompileRequest(
                        source=SAXPY, name="raced", targets=[X86])))
                except Exception as exc:        # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=worker)
                       for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors, errors
            assert len(results) == 8
            stats = svc.stats()
            # one offline compile total: 7 threads joined in flight
            # (coalesced) or hit the cache afterwards
            assert stats.artifact_stores == 1
            # one JIT total for the single (artifact, target, flow)
            assert stats.deploy_compiles == 1
            images = {id(r.image_for("x86")) for r in results}
            assert len(images) == 1, "all callers must share one image"
        finally:
            svc.shutdown()


# ---------------------------------------------------------------------------
# encapsulation guard
# ---------------------------------------------------------------------------

class TestServiceEncapsulationGuard:
    """Satellite: nothing outside ``repro.service`` may reach into the
    cache's or pool's synchronization internals — the sharding and
    executor redesign is only safe while every consumer stays behind
    the public surface."""

    import re as _re
    BANNED = _re.compile(
        r"\.(?:cache|pool)\._\w+"               # svc.cache._lock, ...
        r"|ArtifactCache\._\w+"
        r"|DeploymentPool\._\w+"
        r"|_CacheShard\b")

    def test_no_service_internal_access_outside_package(self):
        import pathlib
        root = pathlib.Path(__file__).parent.parent
        offenders = []
        for base in (root / "src" / "repro", root / "examples",
                     root / "benchmarks"):
            for path in sorted(base.rglob("*.py")):
                if "service" in path.parts and path.match(
                        "*/repro/service/*"):
                    continue
                if self.BANNED.search(path.read_text()):
                    offenders.append(str(path.relative_to(root)))
        assert not offenders, (
            f"modules reaching into repro.service internals (use the "
            f"public cache/pool/stats surface): {offenders}")
