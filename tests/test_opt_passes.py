"""Unit tests for individual offline optimization passes."""

import pytest

from repro.frontend import lower_source
from repro.ir import (
    BinOp, Branch, Cmp, Const, Jump, Load, Move, Select, Store,
    format_function, verify_function,
)
from repro.ir.cfg import natural_loops
from repro.lang import types as ty
from repro.opt import (
    PassManager, cleanup_passes, constfold, copyprop, cse, dce,
    simplify_cfg, standard_passes, strength_reduce,
)
from repro.opt.ifconvert import if_convert
from repro.opt.licm import licm
from repro.opt.loops import find_counted_loops
from tests.support import lower_checked


def cleaned(source, name=None):
    module = lower_source(source)
    for func in module:
        PassManager(cleanup_passes(), verify=True).run(func)
    return module[name] if name else next(iter(module))


def optimized(source, name=None):
    module = lower_source(source)
    for func in module:
        PassManager(standard_passes(), verify=True).run(func)
    return module[name] if name else next(iter(module))


def all_instrs(func):
    return list(func.instructions())


class TestConstFold:
    def test_folds_constant_expression(self):
        func = cleaned("int f(void) { return 2 * 21 + (7 - 7); }")
        ret = func.entry.terminator
        assert isinstance(ret.value, Const)
        assert ret.value.value == 42

    def test_folds_constant_branch(self):
        func = cleaned("int f(int x) { if (1 < 2) return x; return -x; }")
        # The false arm must be gone entirely.
        assert all(not isinstance(i, Branch) for i in all_instrs(func))

    def test_preserves_division_by_zero_trap(self):
        func = cleaned("int f(void) { return 1 / 0; }")
        assert any(isinstance(i, BinOp) and i.op == "div"
                   for i in all_instrs(func))

    def test_mul_by_zero_simplifies(self):
        func = cleaned("int f(int x) { return x * 0; }")
        ret = func.entry.terminator
        assert isinstance(ret.value, Const) and ret.value.value == 0

    def test_add_zero_identity(self):
        func = cleaned("int f(int x) { return x + 0; }")
        assert not any(isinstance(i, BinOp) for i in all_instrs(func))

    def test_float_identity_not_applied(self):
        # x + 0.0 must NOT be simplified (x could be -0.0).
        func = cleaned("double f(double x) { return x + 0.0; }")
        assert any(isinstance(i, BinOp) and i.op == "add"
                   for i in all_instrs(func))

    def test_xor_self_is_zero(self):
        func = cleaned("int f(int x) { return x ^ x; }")
        ret = func.entry.terminator
        assert isinstance(ret.value, Const) and ret.value.value == 0


class TestCopyPropAndDCE:
    def test_snapshot_movs_removed(self):
        func = cleaned("int f(int a, int b) { return a + b; }")
        assert not any(isinstance(i, Move) for i in all_instrs(func))

    def test_dead_computation_removed(self):
        func = cleaned("""
            int f(int x) {
                int unused = x * 37 + 5;
                return x;
            }""")
        assert not any(isinstance(i, BinOp) for i in all_instrs(func))

    def test_stores_never_removed(self):
        func = cleaned("void f(int *p) { *p = 1; }")
        assert any(isinstance(i, Store) for i in all_instrs(func))

    def test_chained_copies_collapse(self):
        func = cleaned("""
            int f(int x) {
                int a = x; int b = a; int c = b;
                return c;
            }""")
        ret = [b for b in func.blocks if b.terminator and
               b.terminator.srcs][-1].terminator
        assert ret.value == func.params[0]


class TestCSE:
    def test_duplicate_address_computation_shared(self):
        func = cleaned("""
            void f(float *y, float a, int i) {
                y[i] = y[i] * a;
            }""")
        muls = [i for i in all_instrs(func)
                if isinstance(i, BinOp) and i.op == "mul" and
                i.ty == ty.U64]
        assert len(muls) == 1      # one index scaling, not two

    def test_loads_not_merged_across_store(self):
        func = cleaned("""
            int f(int *p, int *q) {
                int a = p[0];
                q[0] = 7;
                int b = p[0];   /* may alias q: must reload */
                return a + b;
            }""")
        loads = [i for i in all_instrs(func) if isinstance(i, Load)]
        assert len(loads) == 2

    def test_loads_merged_without_store(self):
        func = cleaned("""
            int f(int *p) {
                int a = p[0];
                int b = p[0];
                return a + b;
            }""")
        loads = [i for i in all_instrs(func) if isinstance(i, Load)]
        assert len(loads) == 1

    def test_commutative_matching(self):
        func = cleaned("int f(int a, int b) { return a * b + b * a; }")
        muls = [i for i in all_instrs(func)
                if isinstance(i, BinOp) and i.op == "mul"]
        assert len(muls) == 1


class TestSimplifyCFG:
    def test_straightline_blocks_merged(self):
        func = cleaned("""
            int f(int x) {
                int y = x + 1;
                { int z = y * 2; return z; }
            }""")
        assert len(func.blocks) == 1

    def test_unreachable_code_removed(self):
        func = cleaned("""
            int f(int x) {
                return x;
                x = x + 1;  /* unreachable */
                return x;
            }""")
        assert len(func.blocks) == 1

    def test_loop_structure_preserved(self):
        func = cleaned("""
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) s += i;
                return s;
            }""")
        assert len(natural_loops(func)) == 1


class TestStrengthReduction:
    def test_mul_pow2_becomes_shift(self):
        module = lower_source("unsigned f(unsigned x) { return x * 8; }")
        func = next(iter(module))
        PassManager(cleanup_passes(), verify=True).run(func)
        strength_reduce(func)
        verify_function(func)
        ops = [i.op for i in all_instrs(func) if isinstance(i, BinOp)]
        assert "shl" in ops and "mul" not in ops

    def test_unsigned_div_pow2_becomes_shift(self):
        module = lower_source("unsigned f(unsigned x) { return x / 4; }")
        func = next(iter(module))
        strength_reduce(func)
        ops = [i.op for i in all_instrs(func) if isinstance(i, BinOp)]
        assert "shr" in ops and "div" not in ops

    def test_signed_div_untouched(self):
        module = lower_source("int f(int x) { return x / 4; }")
        func = next(iter(module))
        strength_reduce(func)
        ops = [i.op for i in all_instrs(func) if isinstance(i, BinOp)]
        assert "div" in ops

    def test_unsigned_rem_pow2_becomes_and(self):
        module = lower_source("unsigned f(unsigned x) { return x % 16; }")
        func = next(iter(module))
        strength_reduce(func)
        ops = [i.op for i in all_instrs(func) if isinstance(i, BinOp)]
        assert "and" in ops and "rem" not in ops

    def test_semantics_preserved(self):
        from tests.support import run_ir
        src = "unsigned f(unsigned x) { return x * 8 + x / 4 + x % 16; }"
        plain = run_ir(src, "f", [1234567])[0]
        module = lower_source(src)
        func = next(iter(module))
        strength_reduce(func)
        from repro.ir.interp import IRInterpreter
        assert IRInterpreter(module).call("f", [1234567]) == plain


class TestLICM:
    def test_invariant_hoisted_out_of_loop(self):
        func = optimized("""
            int f(int n, int a, int b) {
                int s = 0;
                for (int i = 0; i < n; i++) s += a * b;
                return s;
            }""")
        loops = natural_loops(func)
        assert len(loops) == 1
        loop_instrs = [i for blk in func.blocks
                       if blk.label in loops[0].body
                       for i in blk.instrs]
        assert not any(isinstance(i, BinOp) and i.op == "mul"
                       for i in loop_instrs)

    def test_division_not_hoisted(self):
        func = optimized("""
            int f(int n, int a, int b) {
                int s = 0;
                for (int i = 0; i < n; i++) s += a / b;  /* b may be 0 */
                return s;
            }""")
        loops = natural_loops(func)
        loop_instrs = [i for blk in func.blocks
                       if blk.label in loops[0].body
                       for i in blk.instrs]
        assert any(isinstance(i, BinOp) and i.op == "div"
                   for i in loop_instrs)

    def test_zero_trip_loop_division_still_safe(self):
        from tests.support import run_ir
        src = """
            int f(int n, int a, int b) {
                int s = 1;
                for (int i = 0; i < n; i++) s += a / b;
                return s;
            }"""
        module = lower_source(src)
        func = next(iter(module))
        PassManager(standard_passes(), verify=True).run(func)
        from repro.ir.interp import IRInterpreter
        # n == 0 with b == 0 must not trap.
        assert IRInterpreter(module).call("f", [0, 1, 0]) == 1


class TestIfConvert:
    def test_max_idiom_becomes_max_op(self):
        func = optimized("""
            int max_u8(unsigned char *a, int n) {
                int m = 0;
                for (int i = 0; i < n; i++) if (a[i] > m) m = a[i];
                return m;
            }""")
        assert any(isinstance(i, BinOp) and i.op == "max"
                   for i in all_instrs(func))
        assert len(natural_loops(func)) == 1     # diamond is gone

    def test_min_idiom_becomes_min_op(self):
        func = optimized("""
            int min_i32(int *a, int n) {
                int m = 2147483647;
                for (int i = 0; i < n; i++) if (a[i] < m) m = a[i];
                return m;
            }""")
        assert any(isinstance(i, BinOp) and i.op == "min"
                   for i in all_instrs(func))

    def test_else_arm_variant(self):
        func = optimized("""
            int f(int *a, int n) {
                int m = 0;
                for (int i = 0; i < n; i++)
                    if (a[i] <= m) ; else m = a[i];
                return m;
            }""")
        assert any(isinstance(i, (Select, BinOp)) and
                   (isinstance(i, Select) or i.op == "max")
                   for i in all_instrs(func))

    def test_unsafe_load_not_speculated(self):
        # The load address differs from anything loaded on the hot path:
        # if-conversion must leave the branch alone.
        func = optimized("""
            int f(int *a, int *t, int n) {
                int m = 0;
                for (int i = 0; i < n; i++)
                    if (a[i] > 0) m = t[i];   /* t[i] must not speculate */
                return m;
            }""")
        branches = [i for i in all_instrs(func) if isinstance(i, Branch)]
        assert len(branches) >= 2    # loop branch + kept diamond

    def test_store_never_speculated(self):
        func = optimized("""
            void f(int *a, int n) {
                for (int i = 0; i < n; i++)
                    if (a[i] > 0) a[i] = 0;
            }""")
        branches = [i for i in all_instrs(func) if isinstance(i, Branch)]
        assert len(branches) >= 2

    def test_semantics_preserved(self):
        from repro.ir.interp import IRInterpreter
        from repro.semantics import Memory
        src = """
            int clampsum(int *a, int n, int lo, int hi) {
                int s = 0;
                for (int i = 0; i < n; i++) {
                    int v = a[i];
                    if (v < lo) v = lo;
                    if (v > hi) v = hi;
                    s += v;
                }
                return s;
            }"""
        values = [-100, 5, 99999, 13, -2, 0, 77]
        expected = sum(min(max(v, -10), 50) for v in values)

        module = lower_source(src)
        func = next(iter(module))
        PassManager(standard_passes(), verify=True).run(func)
        memory = Memory()
        addr = memory.alloc_array(ty.I32, values)
        got = IRInterpreter(module, memory).call(
            "clampsum", [addr, len(values), -10, 50])
        assert got == expected


class TestCountedLoopRecognition:
    def test_simple_for_recognized(self):
        func = cleaned("""
            void f(int *a, int n) {
                for (int i = 0; i < n; i++) a[i] = i;
            }""")
        loops = find_counted_loops(func)
        assert len(loops) == 1
        loop = loops[0]
        assert loop.pred == "lt"
        assert loop.step == 1
        assert isinstance(loop.init, Const) and loop.init.value == 0
        assert loop.is_simple_forward

    def test_downward_loop_recognized_not_simple(self):
        func = cleaned("""
            void f(int *a, int n) {
                for (int i = n - 1; i >= 0; i--) a[i] = i;
            }""")
        loops = find_counted_loops(func)
        # Either unrecognized or recognized as non-simple; both are fine,
        # but if recognized the step must be negative.
        for loop in loops:
            assert loop.step == -1
            assert not loop.is_simple_forward

    def test_while_with_side_exit_not_counted(self):
        func = cleaned("""
            int f(int *a, int n) {
                for (int i = 0; i < n; i++) {
                    if (a[i] == 0) return i;
                }
                return -1;
            }""")
        loops = find_counted_loops(func)
        assert loops == []

    def test_bound_modified_in_loop_not_counted(self):
        func = cleaned("""
            void f(int *a, int n) {
                for (int i = 0; i < n; i++) { a[i] = i; n--; }
            }""")
        assert find_counted_loops(func) == []
