"""Iterative compilation tests."""

import pytest

from repro.iterative import (
    Configuration, default_configuration, evaluate, hill_climb,
    random_search,
)
from repro.iterative.search import all_configurations, compile_with
from repro.targets import SPARC, X86, Simulator
from repro.semantics import Memory
from repro.workloads import ALL_KERNELS


class TestConfigurationSpace:
    def test_space_size(self):
        assert len(all_configurations()) == 4 * 2 ** 5

    def test_labels_unique(self):
        labels = {c.label() for c in all_configurations()}
        assert len(labels) == len(all_configurations())

    def test_default_is_in_space(self):
        assert default_configuration() in all_configurations()


class TestEvaluation:
    def test_every_configuration_is_correct(self):
        """Sanity: a sample of configurations all compute the same
        result (the optimizer may be slow, never wrong)."""
        kernel = ALL_KERNELS["sum_u8"]
        reference = None
        sample = [
            Configuration(1, False, False, False, False, False),
            Configuration(4, False, True, True, True, True),
            Configuration(2, True, True, True, True, True),
            Configuration(8, True, False, True, False, True),
        ]
        for config in sample:
            compiled = compile_with(kernel, config, X86)
            memory = Memory(1 << 20)
            run = kernel.prepare(memory, 75, seed=4)
            value = Simulator(compiled, memory).run(kernel.entry,
                                                    run.args).value
            if reference is None:
                reference = value
            assert value == reference, config

    def test_evaluate_returns_positive_cycles(self):
        kernel = ALL_KERNELS["saxpy_fp"]
        cycles = evaluate(kernel, default_configuration(), X86, n=64)
        assert cycles > 0

    def test_vectorize_toggle_matters_on_x86(self):
        kernel = ALL_KERNELS["sum_u8"]
        on = evaluate(kernel, Configuration(vectorize=True), X86, n=128)
        off = evaluate(kernel, Configuration(vectorize=False), X86,
                       n=128)
        assert on < off / 4


class TestSearch:
    def test_hill_climb_never_worse_than_default(self):
        kernel = ALL_KERNELS["prefix_sum"]
        result = hill_climb(kernel, SPARC, budget=10, n=96)
        assert result.best_cycles <= result.default_cycles
        assert result.evaluations <= 10

    def test_hill_climb_finds_unrolling_for_scalar_loop(self):
        # prefix_sum cannot vectorize; unrolling is the only win.
        kernel = ALL_KERNELS["prefix_sum"]
        result = hill_climb(kernel, X86, budget=12, n=128)
        assert result.improvement > 1.0
        assert result.best.unroll > 1

    def test_random_search_respects_budget(self):
        kernel = ALL_KERNELS["fir"]
        result = random_search(kernel, X86, budget=5, n=64)
        assert result.evaluations == 6       # 5 samples + default
        assert result.best_cycles <= result.default_cycles

    def test_history_recorded(self):
        kernel = ALL_KERNELS["sdot"]
        result = random_search(kernel, X86, budget=4, n=64)
        assert len(result.history) == 4
        for config, cycles in result.history:
            assert cycles > 0
