from setuptools import setup

setup(
    entry_points={
        "console_scripts": [
            "pvi-lint=repro.analysis.cli:main",
            "pvi-serve=repro.service.edge.server:main",
        ],
    },
)
