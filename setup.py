from setuptools import setup

setup(
    entry_points={
        "console_scripts": [
            "pvi-lint=repro.analysis.cli:main",
        ],
    },
)
