"""Service API v2 economics: async batching and executor backends.

Two claims of the redesign, measured:

* the **async facade** serves batches with gather-level concurrency
  and coalesces identical concurrent requests onto one compilation —
  a thundering herd costs one offline compile and one fan-out;
* the **process executor** parallelizes *cold* JIT fan-out past the
  GIL: with >= 2 cores, deploying many distinct (artifact, target)
  pairs under an analysis-heavy flow must beat the thread executor,
  whose cold compiles serialize on the interpreter lock.  Modeled
  cycle and work numbers stay byte-for-byte identical — executors
  change wall-clock, never results.
"""

import asyncio
import os
import time

import pytest

from repro.bench import format_table
from repro.semantics import Memory
from repro.service import (
    AsyncCompilationService, CompilationService, CompileRequest,
)
from repro.targets import Simulator
from repro.targets.catalog import TARGETS
from repro.workloads import ALL_KERNELS
from repro.workloads.pipeline import PIPELINE_SOURCE

from conftest import SMOKE, register_report

CATALOG = list(TARGETS.values())
CORES = os.cpu_count() or 1
#: distinct cold compilations per executor = SOURCES x |CATALOG|;
#: the analysis-heavy flow makes each one expensive enough to measure
SOURCES = 2 if SMOKE else 4
COLD_FLOW = "online-only"
HERD = 8


#: timing repetitions per executor; the best round is reported, so a
#: scheduler hiccup on a loaded CI runner cannot flip the comparison
ROUNDS = 3


def _cold_requests(round_id=0):
    """SOURCES distinct artifacts (the module name joins the cache
    key — distinct per round so every round is genuinely cold), each
    fanned over the full catalog under the heavy flow."""
    return [CompileRequest(source=PIPELINE_SOURCE,
                           name=f"pipe{round_id}x{i}",
                           targets=CATALOG, flow=COLD_FLOW)
            for i in range(SOURCES)]


def _timed_cold_fanout(executor_name):
    """Best-of-ROUNDS wall-clock of the cold fan-out on one executor.

    Each round uses a fresh service and fresh cache keys; the
    executor's worker pool is warmed with one throwaway compile
    first, so process-pool fork/start cost is not billed to the
    measured fan-out (a serving process pays it once at boot).
    """
    best = None
    compiles_per_round = []
    for round_id in range(ROUNDS):
        service = CompilationService(executor=executor_name,
                                     cache_capacity=2 * SOURCES + 2)
        try:
            service.submit(CompileRequest(
                source=ALL_KERNELS["sum_u8"].source, name="warmup",
                targets=[CATALOG[0]], flow=COLD_FLOW))
            start = time.perf_counter()
            service.submit_batch(_cold_requests(round_id))
            elapsed = time.perf_counter() - start
            compiles_per_round.append(service.stats().deploy_compiles)
            best = elapsed if best is None else min(best, elapsed)
        finally:
            service.shutdown()
    return best, compiles_per_round


def _modeled_numbers(result):
    """(cycles, instructions, jit_work) of one deployed image —
    the executor-invariant part of a deployment."""
    kernel = ALL_KERNELS["saxpy_fp"]
    memory = Memory(1 << 21)
    run = kernel.prepare(memory, 48, 7)
    image = result.image_for("x86")
    sim = Simulator(image, memory).run(kernel.entry, run.args)
    return (sim.cycles, sim.instructions, image.total_jit_work,
            image.total_code_bytes)


@pytest.fixture(scope="module")
def measurements():
    # -- cold fan-out per executor ------------------------------------------
    fanout = {}
    modeled = {}
    for name in ("thread", "process", "inline"):
        elapsed, compiles = _timed_cold_fanout(name)
        fanout[name] = (elapsed, compiles)
        saxpy_probe = CompilationService(executor=name)
        try:
            modeled[name] = _modeled_numbers(saxpy_probe.submit(
                CompileRequest(source=ALL_KERNELS["saxpy_fp"].source,
                               name="probe", targets=["x86"])))
        finally:
            saxpy_probe.shutdown()

    # -- async batch vs serial submits --------------------------------------
    serial_service = CompilationService()
    start = time.perf_counter()
    for request in _cold_requests():
        serial_service.submit(request)
    serial_s = time.perf_counter() - start
    serial_service.shutdown()

    async def batch():
        async with AsyncCompilationService() as service:
            start = time.perf_counter()
            await service.submit_batch(_cold_requests())
            return time.perf_counter() - start

    async_batch_s = asyncio.run(batch())

    # -- coalescing: a thundering herd of identical requests ----------------
    async def herd():
        async with AsyncCompilationService() as service:
            request = CompileRequest(
                source=ALL_KERNELS["dscal_fp"].source, name="herd",
                targets=CATALOG)
            await asyncio.gather(*(service.submit(request)
                                   for _ in range(HERD)))
            return service.stats()

    herd_stats = asyncio.run(herd())
    return fanout, modeled, serial_s, async_batch_s, herd_stats


@pytest.fixture(scope="module")
def report(measurements):
    fanout, modeled, serial_s, async_batch_s, herd_stats = measurements
    jobs = SOURCES * len(CATALOG)
    rows = [(name, f"{elapsed * 1e3:.2f}", str(compiles[0]),
             f"{fanout['thread'][0] / elapsed:.2f}x")
            for name, (elapsed, compiles) in fanout.items()]
    rows.append(("--- facade ---", "ms", "", ""))
    rows.append(("serial sync batch", f"{serial_s * 1e3:.2f}", "", ""))
    rows.append(("async gather batch", f"{async_batch_s * 1e3:.2f}",
                 "", ""))
    table = format_table(
        ["executor", "cold fan-out ms", "JIT compiles", "vs thread"],
        rows,
        title=f"Service v2 — {jobs}-image cold fan-out "
              f"({COLD_FLOW} flow, {CORES} cores), async batching")
    register_report("service_async", table, data={
        "cores": CORES,
        "cold_jobs": jobs,
        "flow": COLD_FLOW,
        "rounds": ROUNDS,
        "fanout": {name: {"best_seconds": elapsed,
                          "jit_compiles_per_round": compiles}
                   for name, (elapsed, compiles) in fanout.items()},
        "modeled_numbers": {
            name: {"cycles": numbers[0], "instructions": numbers[1],
                   "jit_work": numbers[2], "code_bytes": numbers[3]}
            for name, numbers in modeled.items()},
        "batch": {"serial_sync_s": serial_s,
                  "async_gather_s": async_batch_s},
        "herd": {"requests": HERD,
                 "coalesced": herd_stats.coalesced_requests,
                 "artifact_stores": herd_stats.artifact_stores,
                 "deploy_compiles": herd_stats.deploy_compiles},
        "service_stats": herd_stats.as_dict(),
    })
    return table


class TestServiceAsyncEconomics:
    def test_modeled_numbers_identical_across_executors(
            self, measurements, report):
        """Executors change wall-clock, never cycles/work/code size."""
        _, modeled, _, _, _ = measurements
        assert len(set(modeled.values())) == 1, modeled

    def test_every_executor_compiled_every_job(self, measurements):
        fanout = measurements[0]
        jobs = SOURCES * len(CATALOG)
        for name, (_, compiles) in fanout.items():
            # +1 for the warm-up compile, every round
            assert compiles == [jobs + 1] * ROUNDS, \
                f"{name}: expected {jobs + 1} JIT compiles per " \
                f"round, got {compiles}"

    def test_herd_coalesces_to_one_compilation(self, measurements):
        herd_stats = measurements[4]
        assert herd_stats.coalesced_requests == HERD - 1
        assert herd_stats.artifact_stores == 1
        assert herd_stats.deploy_compiles == len(CATALOG)

    @pytest.mark.skipif(
        CORES < 2,
        reason="process-executor speedup needs >= 2 cores "
               "(numbers still recorded in BENCH_service_async.json)")
    def test_process_beats_thread_on_cold_fanout(self, measurements,
                                                 report):
        """The point of the executor redesign: cold JIT fan-out of
        many distinct images must scale past the GIL on a multi-core
        runner."""
        fanout = measurements[0]
        thread_s = fanout["thread"][0]
        process_s = fanout["process"][0]
        assert process_s < thread_s, \
            f"process executor ({process_s * 1e3:.1f} ms) must beat " \
            f"the thread executor ({thread_s * 1e3:.1f} ms) on " \
            f"{CORES} cores"


def test_bench_warm_async_request(benchmark):
    """Steady-state latency of a fully cached request through the
    async facade (event-loop startup included)."""
    service = CompilationService()
    request = CompileRequest(source=ALL_KERNELS["saxpy_fp"].source,
                             name="saxpy", targets=CATALOG)
    service.submit(request)                   # prime caches

    async def warm():
        async with AsyncCompilationService(service) as front:
            return await front.submit(request)

    result = benchmark.pedantic(lambda: asyncio.run(warm()),
                                rounds=5, iterations=2)
    assert result.fully_cached
    service.shutdown()
