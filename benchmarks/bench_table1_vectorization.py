"""Experiment T1 — the paper's Table 1.

Run times (simulated cycles) and relative speedup of split automatic
vectorization: six kernels, three targets.  The offline compiler
vectorizes once into portable bytecode; the x86 JIT maps the builtins
to SIMD, the UltraSparc and PowerPC JITs scalarize them.

Shape criteria (DESIGN.md): all x86 speedups > 1 with ``max_u8`` by
far the largest; SPARC sub-word reductions below 1.0, fp 1.2–1.6;
PPC everything modestly above 1.
"""

import pytest

from repro.bench import PAPER_TABLE1_RELATIVE, format_table, run_table1
from repro.core import deploy, offline_compile
from repro.semantics import Memory
from repro.targets import PPC, SPARC, X86, Simulator
from repro.workloads import TABLE1

from conftest import register_report

N = 512


@pytest.fixture(scope="module")
def table1_rows():
    rows = run_table1(n=N)
    table = format_table(
        ["benchmark", "target", "scalar", "vect.", "relative", "paper"],
        [(r.kernel, r.target, r.scalar_cycles, r.vector_cycles,
          r.relative, r.paper_relative) for r in rows],
        title=f"Table 1 — split automatic vectorization "
              f"(simulated cycles, n={N})")
    register_report("table1_vectorization", table)
    return rows


class TestTable1Shape:
    def test_x86_always_wins(self, table1_rows):
        for row in table1_rows:
            if row.target == "x86":
                assert row.relative > 1.3, row

    def test_x86_max_u8_is_largest(self, table1_rows):
        x86 = {r.kernel: r.relative for r in table1_rows
               if r.target == "x86"}
        assert x86["max_u8"] == max(x86.values())
        assert x86["max_u8"] > 8.0

    def test_x86_ordering_matches_paper(self, table1_rows):
        """u8 > u16 > fp, as in the paper's columns."""
        x86 = {r.kernel: r.relative for r in table1_rows
               if r.target == "x86"}
        assert x86["sum_u8"] > x86["sum_u16"] > x86["saxpy_fp"]

    def test_sparc_subword_reductions_lose(self, table1_rows):
        sparc = {r.kernel: r.relative for r in table1_rows
                 if r.target == "sparc"}
        assert sparc["max_u8"] < 1.0
        assert sparc["sum_u8"] < 1.0
        assert sparc["sum_u16"] < 1.0

    def test_sparc_fp_gains_from_unrolling(self, table1_rows):
        sparc = {r.kernel: r.relative for r in table1_rows
                 if r.target == "sparc"}
        for kernel in ("vecadd_fp", "saxpy_fp", "dscal_fp"):
            assert 1.1 < sparc[kernel] < 1.7

    def test_ppc_modestly_above_one(self, table1_rows):
        for row in table1_rows:
            if row.target == "ppc":
                assert 1.0 < row.relative < 2.0, row

    def test_every_cell_within_2x_of_paper_band(self, table1_rows):
        """Loose absolute check: each relative speedup within a factor
        of ~2.1 of the paper's value (documented in EXPERIMENTS.md)."""
        for row in table1_rows:
            paper = PAPER_TABLE1_RELATIVE[(row.kernel, row.target)]
            ratio = row.relative / paper
            assert 0.45 < ratio < 2.1, \
                f"{row.kernel}@{row.target}: {row.relative:.2f} vs " \
                f"paper {paper}"


@pytest.mark.parametrize("kernel_name", sorted(TABLE1))
def test_bench_x86_vectorized_run(benchmark, table1_rows, kernel_name):
    """Wall-clock of simulating the vectorized kernel on x86 (measures
    the harness itself; the experiment numbers are the cycle counts)."""
    kernel = TABLE1[kernel_name]
    artifact = offline_compile(kernel.source)
    compiled = deploy(artifact, X86, "split")

    def run_once():
        memory = Memory(1 << 21)
        run = kernel.prepare(memory, N, seed=7)
        return Simulator(compiled, memory).run(kernel.entry,
                                               run.args).cycles

    cycles = benchmark.pedantic(run_once, rounds=3, iterations=1)
    assert cycles > 0
