"""Benchmark-suite infrastructure.

Each bench module computes its experiment once (module-scoped
fixture), registers the paper-style table for the terminal summary,
and wraps representative pieces in pytest-benchmark timers.  Tables
are written to ``benchmarks/results/`` as text; a bench that also
passes ``data=`` gets a machine-readable ``BENCH_<name>.json`` next to
it, so CI can track the perf trajectory per PR without parsing tables.

Setting ``PVI_BENCH_SMOKE=1`` shrinks the suites to their smallest
kernel / fewest rounds — the CI smoke job uses this to keep the JSON
artifacts fresh on every push at a few seconds' cost.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import List, Optional, Tuple

_REPORTS: List[Tuple[str, str]] = []
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: benches read this to shrink to their smallest configuration
#: (explicit falsy spellings count as off: PVI_BENCH_SMOKE=0 is a
#: full run, not a smoke run)
SMOKE = os.environ.get("PVI_BENCH_SMOKE", "").strip().lower() \
    not in ("", "0", "false", "no")


def register_report(name: str, text: str,
                    data: Optional[dict] = None) -> None:
    """Queue a table for the terminal summary and write it to disk.

    ``data`` (JSON-able) additionally lands in
    ``results/BENCH_<name>.json`` with a ``smoke`` marker so trend
    tooling can tell full runs from smoke runs apart.
    """
    _REPORTS.append((name, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    if data is not None:
        payload = {"bench": name, "smoke": SMOKE, "data": data}
        (RESULTS_DIR / f"BENCH_{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("experiment tables (paper reproduction)")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"==== {name} ====")
        for line in text.splitlines():
            terminalreporter.write_line(line)
