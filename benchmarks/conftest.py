"""Benchmark-suite infrastructure.

Each bench module computes its experiment once (module-scoped
fixture), registers the paper-style table for the terminal summary,
and wraps representative pieces in pytest-benchmark timers.  Tables
are also written to ``benchmarks/results/`` so a plain
``pytest benchmarks/ --benchmark-only`` leaves artifacts behind.
"""

from __future__ import annotations

import pathlib
from typing import List, Tuple

_REPORTS: List[Tuple[str, str]] = []
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def register_report(name: str, text: str) -> None:
    """Queue a table for the terminal summary and write it to disk."""
    _REPORTS.append((name, text))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("experiment tables (paper reproduction)")
    for name, text in _REPORTS:
        terminalreporter.write_line("")
        terminalreporter.write_line(f"==== {name} ====")
        for line in text.splitlines():
            terminalreporter.write_line(line)
