"""Experiment F1 — Figure 1, operationalized.

The figure shows optimizations split into coordinated offline/online
steps.  The measurable content: the split flow should reach the code
quality of full online optimization at (nearly) the online cost of the
no-optimization flow.  For each deployment flow we report where the
analysis work happened and what the generated code achieves.
"""

import pytest

from repro.bench import format_table, run_split_flow
from repro.targets import X86

from conftest import register_report

KERNELS = ("saxpy_fp", "sum_u8")


@pytest.fixture(scope="module")
def flow_reports():
    all_rows = []
    for kernel in KERNELS:
        for report in run_split_flow(kernel, X86, n=512):
            all_rows.append((kernel, report))
    table = format_table(
        ["kernel", "flow", "offline work", "online work",
         "online analysis", "code bytes", "cycles"],
        [(kernel, r.flow, r.offline_work, r.online_work,
          r.online_analysis_work, r.code_bytes, r.cycles)
         for kernel, r in all_rows],
        title="Figure 1 — split compilation flows (x86)")
    register_report("fig1_split_flow", table)
    return all_rows


class TestFlowShape:
    def by_flow(self, rows, kernel):
        return {r.flow: r for k, r in rows if k == kernel}

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_split_matches_online_code_quality(self, flow_reports,
                                               kernel):
        flows = self.by_flow(flow_reports, kernel)
        assert flows["split"].cycles <= 1.25 * flows["online-only"].cycles

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_split_beats_offline_only_performance(self, flow_reports,
                                                  kernel):
        flows = self.by_flow(flow_reports, kernel)
        assert flows["split"].cycles < flows["offline-only"].cycles

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_split_needs_no_online_analysis(self, flow_reports, kernel):
        flows = self.by_flow(flow_reports, kernel)
        assert flows["split"].online_analysis_work == 0
        assert flows["online-only"].online_analysis_work > 0

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_results_identical_across_flows(self, flow_reports, kernel):
        flows = self.by_flow(flow_reports, kernel)
        values = {repr(r.value) for r in flows.values()}
        assert len(values) == 1

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_offline_work_happened_offline_in_split(self, flow_reports,
                                                    kernel):
        flows = self.by_flow(flow_reports, kernel)
        assert flows["split"].offline_work > 0


def test_bench_split_deployment(benchmark, flow_reports):
    """Wall-clock of one full split deployment (JIT included)."""
    result = benchmark.pedantic(
        lambda: run_split_flow("saxpy_fp", X86, n=128),
        rounds=2, iterations=1)
    assert len(result) == 3
