"""Experiment F1 — Figure 1, operationalized.

The figure shows optimizations split into coordinated offline/online
steps.  The measurable content: the split flow should reach the code
quality of full online optimization at (nearly) the online cost of the
no-optimization flow.  For each deployment flow we report where the
analysis work happened and what the generated code achieves.
"""

import pytest

from repro.bench import format_table, run_split_flow
from repro.flows import flow_names
from repro.targets import X86

from conftest import SMOKE, register_report

# smoke mode (CI per-PR trend job): the smallest kernel only
KERNELS = ("sum_u8",) if SMOKE else ("saxpy_fp", "sum_u8")
N = 128 if SMOKE else 512


@pytest.fixture(scope="module")
def flow_reports():
    all_rows = []
    for kernel in KERNELS:
        for report in run_split_flow(kernel, X86, n=N):
            all_rows.append((kernel, report))
    table = format_table(
        ["kernel", "flow", "offline work", "online work",
         "online analysis", "code bytes", "cycles"],
        [(kernel, r.flow, r.offline_work, r.online_work,
          r.online_analysis_work, r.code_bytes, r.cycles)
         for kernel, r in all_rows],
        title="Figure 1 — split compilation flows (x86)")
    register_report("fig1_split_flow", table, data={
        "n": N,
        "flows": list(flow_names()),
        "rows": [{"kernel": kernel, "flow": r.flow,
                  "offline_work": r.offline_work,
                  "online_work": r.online_work,
                  "online_analysis_work": r.online_analysis_work,
                  "code_bytes": r.code_bytes, "cycles": r.cycles,
                  "offline_pass_work": r.offline_pass_work,
                  "online_pass_work": r.online_pass_work}
                 for kernel, r in all_rows],
    })
    return all_rows


class TestFlowShape:
    def by_flow(self, rows, kernel):
        return {r.flow: r for k, r in rows if k == kernel}

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_split_matches_online_code_quality(self, flow_reports,
                                               kernel):
        flows = self.by_flow(flow_reports, kernel)
        assert flows["split"].cycles <= 1.25 * flows["online-only"].cycles

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_split_beats_offline_only_performance(self, flow_reports,
                                                  kernel):
        flows = self.by_flow(flow_reports, kernel)
        assert flows["split"].cycles < flows["offline-only"].cycles

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_split_needs_no_online_analysis(self, flow_reports, kernel):
        flows = self.by_flow(flow_reports, kernel)
        assert flows["split"].online_analysis_work == 0
        assert flows["online-only"].online_analysis_work > 0

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_results_identical_across_flows(self, flow_reports, kernel):
        flows = self.by_flow(flow_reports, kernel)
        values = {repr(r.value) for r in flows.values()}
        assert len(values) == 1

    @pytest.mark.parametrize("kernel", KERNELS)
    def test_offline_work_happened_offline_in_split(self, flow_reports,
                                                    kernel):
        flows = self.by_flow(flow_reports, kernel)
        assert flows["split"].offline_work > 0


def test_bench_split_deployment(benchmark, flow_reports):
    """Wall-clock of one full split deployment (JIT included)."""
    result = benchmark.pedantic(
        lambda: run_split_flow(KERNELS[0], X86, n=128),
        rounds=2, iterations=1)
    assert len(result) == len(flow_names())
