"""Service-layer economics: artifact cache and multi-target fan-out.

The split-compilation argument is once-compile/many-deploy: the
offline step runs once per program, the JIT once per (artifact,
target, flow).  This module measures what the service layer buys over
the seed behaviour (full recompile per call, one serial target at a
time):

* cold vs warm compile latency — a warm hit must be >= 5x faster;
* repeated whole-catalog deployment — the service (concurrent fan-out
  plus the image memo) must beat the serial, memo-less baseline.
"""

import time

import pytest

from repro.bench import format_table
from repro.core import deploy
from repro.service import CompilationService, CompileRequest
from repro.targets.catalog import TARGETS
from repro.workloads import TABLE1
from repro.workloads.pipeline import PIPELINE_SOURCE

from conftest import SMOKE, register_report

# smoke mode (CI per-PR trend job): the smallest kernel only
CACHE_KERNELS = ("sum_u8",) if SMOKE else \
    ("saxpy_fp", "sum_u8", "dscal_fp")
CATALOG = list(TARGETS.values())
ROUNDS = 2 if SMOKE else 3


@pytest.fixture(scope="module")
def measurements():
    service = CompilationService()

    # -- cold vs warm offline compiles --------------------------------------
    compile_rows = []
    for name in CACHE_KERNELS:
        source = TABLE1[name].source
        cold = service.compile(source, name)
        assert not cold.cache_hit
        warm_latency = min(
            service.compile(source, name).latency for _ in range(5))
        compile_rows.append((name, cold.latency, warm_latency))

    # -- repeated whole-catalog deployment ----------------------------------
    # Baseline: the seed's shape — every round JITs every target from
    # scratch, serially.  Service: concurrent fan-out, image memo warm
    # after round one.
    artifact = service.artifact(PIPELINE_SOURCE, "pipeline")
    serial_rounds = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        for target in CATALOG:
            deploy(artifact, target, "split")
        serial_rounds.append(time.perf_counter() - start)

    service_rounds = []
    for _ in range(ROUNDS):
        start = time.perf_counter()
        images = service.deploy_many(artifact, CATALOG, "split")
        service_rounds.append(time.perf_counter() - start)
    assert sorted(images) == sorted(TARGETS)

    stats = service.stats()
    service.shutdown()
    return compile_rows, serial_rounds, service_rounds, stats


@pytest.fixture(scope="module")
def report(measurements):
    compile_rows, serial_rounds, service_rounds, stats = measurements
    rows = [(name, f"{cold * 1e3:.2f}", f"{warm * 1e3:.3f}",
             f"{cold / warm:.0f}x")
            for name, cold, warm in compile_rows]
    rows.append(("--- fan-out ---", "serial ms", "service ms", ""))
    for index, (serial, svc) in enumerate(zip(serial_rounds,
                                              service_rounds)):
        rows.append((f"catalog round {index + 1}",
                     f"{serial * 1e3:.2f}", f"{svc * 1e3:.2f}",
                     f"{serial / svc:.0f}x" if svc else ""))
    table = format_table(
        ["workload", "cold ms", "warm ms", "speedup"], rows,
        title=f"Compilation service — cache and {len(CATALOG)}-target "
              f"fan-out")
    register_report("service_cache", table, data={
        "compiles": [{"kernel": name, "cold_s": cold, "warm_s": warm}
                     for name, cold, warm in compile_rows],
        "fanout_rounds": [{"round": i + 1, "serial_s": serial,
                           "service_s": svc}
                          for i, (serial, svc) in
                          enumerate(zip(serial_rounds, service_rounds))],
        "targets": len(CATALOG),
        # the full machine-readable snapshot: per-shard cache traffic
        # and per-executor deployment counters included
        "service_stats": stats.as_dict(),
    })
    return table


class TestCacheEconomics:
    def test_warm_compile_at_least_5x_faster(self, measurements, report):
        for name, cold, warm in measurements[0]:
            assert cold >= 5 * warm, \
                f"{name}: warm hit only {cold / warm:.1f}x faster"

    def test_service_beats_serial_deployment(self, measurements):
        """Concurrent fan-out + memo vs the seed's serial recompiles,
        over the full target catalog, across repeated rounds."""
        _, serial_rounds, service_rounds, _ = measurements
        assert sum(service_rounds) < sum(serial_rounds)
        # warm rounds individually demolish any serial round
        assert min(service_rounds[1:]) < min(serial_rounds)

    def test_image_memo_hit_after_first_round(self, measurements):
        stats = measurements[3]
        # round 1 compiles each catalog target once; rounds 2+ and the
        # serial baseline's artifact reuse are all memo hits
        assert stats.deploy_compiles == len(CATALOG)
        assert stats.deploy_memo_hits >= (ROUNDS - 1) * len(CATALOG)

    def test_artifact_cache_hit_rate(self, measurements):
        stats = measurements[3]
        assert stats.artifact_hits >= len(CACHE_KERNELS) * 5
        assert stats.artifact_misses == len(CACHE_KERNELS) + 1


def test_bench_warm_request(benchmark):
    """Steady-state latency of a fully cached multi-target request."""
    service = CompilationService()
    request = CompileRequest(source=TABLE1["saxpy_fp"].source,
                             name="saxpy", targets=CATALOG, flow="split")
    service.submit(request)                  # prime caches
    result = benchmark.pedantic(lambda: service.submit(request),
                                rounds=5, iterations=2)
    assert result.fully_cached
    service.shutdown()
