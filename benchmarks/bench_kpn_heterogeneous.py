"""Experiment S4c — §4 direction: Kahn process networks on
heterogeneous multicores.

One annotated bytecode module, one JIT per core kind, measured
per-actor costs, and a mapping/scheduling pass.  Expected shape: the
heterogeneous mapping beats pinning everything to the host, and the
benefit grows with platform diversity (the SIMD-hungry elementwise
actors migrate to the DSP, the branchy recursive filters to the
branch-friendly core).
"""

import pytest

from repro.bench import format_table
from repro.bench.experiments import run_kpn

from conftest import register_report


@pytest.fixture(scope="module")
def kpn_rows():
    rows = run_kpn(blocks=48)
    table = format_table(
        ["platform", "host-only", "heterogeneous", "speedup"],
        [(r.platform, f"{r.host_only:.0f}", f"{r.heterogeneous:.0f}",
          r.speedup) for r in rows],
        title="KPN pipeline makespan (time units, 48 blocks)")
    assignment = rows[-1].assignment
    placing = format_table(
        ["actor", "core"],
        sorted(assignment.items()),
        title="Mapping on the richest platform")
    register_report("kpn_heterogeneous", table + "\n\n" + placing)
    return rows


class TestKPNMapping:
    def test_heterogeneous_always_helps(self, kpn_rows):
        for row in kpn_rows:
            assert row.speedup >= 1.0, row.platform

    def test_rich_platform_speedup_substantial(self, kpn_rows):
        richest = kpn_rows[-1]
        assert richest.speedup > 1.8

    def test_diversity_helps_more_than_replication(self, kpn_rows):
        by_name = {r.platform: r for r in kpn_rows}
        assert by_name["host + dsp + big"].heterogeneous <= \
            by_name["host x4"].heterogeneous

    def test_vector_actors_leave_the_host(self, kpn_rows):
        richest = kpn_rows[-1]
        offloaded = [actor for actor, core in richest.assignment.items()
                     if core != "host"]
        assert "gain_l" in offloaded or "gain_r" in offloaded
        assert len(offloaded) >= 4


def test_bench_kpn_pipeline(benchmark, kpn_rows):
    rows = benchmark.pedantic(lambda: run_kpn(blocks=8), rounds=1,
                              iterations=1)
    assert rows
