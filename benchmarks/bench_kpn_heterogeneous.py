"""Experiment S4c — §4 direction: Kahn process networks on
heterogeneous multicores.

One annotated bytecode module, one JIT per core kind, measured
per-actor costs, and a mapping/scheduling pass.  Expected shape: the
heterogeneous mapping beats pinning everything to the host, and the
benefit grows with platform diversity (the SIMD-hungry elementwise
actors migrate to the DSP, the branchy recursive filters to the
branch-friendly core).

On top of the paper's three platforms this bench runs a fourth built
around the registry-resolved ``arm`` NEON target — platforms here are
compositions of registered target *names*, exercising the target
registry end to end — and emits machine-readable ``BENCH_*.json`` so
CI tracks the makespans per PR.
"""

import pytest

from repro.bench import default_kpn_platforms, format_table
from repro.bench.experiments import run_kpn
from repro.core import Core, Platform

from conftest import SMOKE, register_report

BLOCKS = 8 if SMOKE else 48

#: the paper's three platforms plus the arm-flavoured one
PLATFORMS = default_kpn_platforms() + [
    Platform("host + arm + dsp", [Core("host", 2), Core("arm", 1),
                                  Core("dsp", 1)]),
]


@pytest.fixture(scope="module")
def kpn_rows():
    rows = run_kpn(blocks=BLOCKS, platforms=PLATFORMS)
    table = format_table(
        ["platform", "host-only", "heterogeneous", "speedup"],
        [(r.platform, f"{r.host_only:.0f}", f"{r.heterogeneous:.0f}",
          r.speedup) for r in rows],
        title=f"KPN pipeline makespan (time units, {BLOCKS} blocks)")
    by_name = {r.platform: r for r in rows}
    assignment = by_name["host + dsp + big"].assignment
    placing = format_table(
        ["actor", "core"],
        sorted(assignment.items()),
        title="Mapping on the richest platform")
    register_report(
        "kpn_heterogeneous", table + "\n\n" + placing,
        data={
            "blocks": BLOCKS,
            "platforms": {
                r.platform: {
                    "host_only": r.host_only,
                    "heterogeneous": r.heterogeneous,
                    "speedup": r.speedup,
                    "assignment": r.assignment,
                } for r in rows
            },
        })
    return rows


class TestKPNMapping:
    def test_heterogeneous_always_helps(self, kpn_rows):
        for row in kpn_rows:
            assert row.speedup >= 1.0, row.platform

    def test_rich_platform_speedup_substantial(self, kpn_rows):
        by_name = {r.platform: r for r in kpn_rows}
        assert by_name["host + dsp + big"].speedup > 1.8

    def test_diversity_helps_more_than_replication(self, kpn_rows):
        by_name = {r.platform: r for r in kpn_rows}
        assert by_name["host + dsp + big"].heterogeneous <= \
            by_name["host x4"].heterogeneous

    def test_vector_actors_leave_the_host(self, kpn_rows):
        by_name = {r.platform: r for r in kpn_rows}
        richest = by_name["host + dsp + big"]
        offloaded = [actor for actor, core in richest.assignment.items()
                     if core != "host"]
        assert "gain_l" in offloaded or "gain_r" in offloaded
        assert len(offloaded) >= 4

    def test_arm_platform_beats_host_only(self, kpn_rows):
        by_name = {r.platform: r for r in kpn_rows}
        arm_row = by_name["host + arm + dsp"]
        assert arm_row.speedup > 1.5
        # the NEON core is actually used, not just present
        assert "arm" in set(arm_row.assignment.values())


def test_bench_kpn_pipeline(benchmark, kpn_rows):
    rows = benchmark.pedantic(lambda: run_kpn(blocks=8), rounds=1,
                              iterations=1)
    assert rows
