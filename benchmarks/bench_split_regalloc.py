"""Experiment S4a — split register allocation (§4, Diouf et al. [18]).

Dynamic spill traffic (spill loads + stores executed) under three
online allocators, across register counts K:

* ``local`` — the era-appropriate baseline: program variables live in
  memory, registers only inside expressions (Mono-2010 style);
* ``linear`` — furthest-end linear scan;
* ``annotated`` — linear scan whose eviction choice follows the
  offline loop-weighted ranking carried as a bytecode annotation
  (linear-time online, like the paper's claim).

Paper claim: up to 40 % of the spills saved, with a linear-time
online algorithm.
"""

import pytest

from repro.bench import format_table
from repro.bench.experiments import run_split_regalloc

from conftest import register_report

K_VALUES = (6, 8, 10, 12, 16)


@pytest.fixture(scope="module")
def regalloc_rows():
    rows = run_split_regalloc(k_values=K_VALUES, n=96)
    table = format_table(
        ["function", "K", "local", "linear scan", "annotated",
         "saved vs local", "saved vs linear"],
        [(r.function, r.k, r.local_spill_ops, r.linear_spill_ops,
          r.annotated_spill_ops,
          f"{100 * r.saving_vs_local:.0f}%",
          f"{100 * r.saving_vs_linear:.0f}%") for r in rows],
        title="Split register allocation — dynamic spill operations")
    register_report("split_regalloc", table)
    return rows


class TestSpillSavings:
    def test_headline_saving_reached(self, regalloc_rows):
        """'saving up to 40% of the spills' vs the baseline JIT."""
        savings = [r.saving_vs_local for r in regalloc_rows
                   if r.local_spill_ops > 0]
        assert max(savings) >= 0.40

    def test_saves_on_most_pressured_configs(self, regalloc_rows):
        pressured = [r for r in regalloc_rows if r.local_spill_ops > 100]
        saving = [r for r in pressured if r.saving_vs_local > 0.05]
        assert len(saving) >= len(pressured) // 3

    def test_annotated_never_worse_than_local_overall(self,
                                                      regalloc_rows):
        total_local = sum(r.local_spill_ops for r in regalloc_rows)
        total_annotated = sum(r.annotated_spill_ops
                              for r in regalloc_rows)
        assert total_annotated < total_local

    def test_annotated_comparable_to_linear_overall(self, regalloc_rows):
        """The ranking is computed offline but must stay competitive
        with the best online heuristic (the paper's 'comparable
        quality' claim)."""
        total_linear = sum(r.linear_spill_ops for r in regalloc_rows)
        total_annotated = sum(r.annotated_spill_ops
                              for r in regalloc_rows)
        assert total_annotated <= 1.15 * total_linear

    def test_more_registers_never_more_spills(self, regalloc_rows):
        by_func = {}
        for r in regalloc_rows:
            by_func.setdefault(r.function, []).append(r)
        for rows in by_func.values():
            rows.sort(key=lambda r: r.k)
            for a, b in zip(rows, rows[1:]):
                assert b.annotated_spill_ops <= a.annotated_spill_ops \
                    + 32   # small slack: slot alignment effects


def test_bench_regalloc_sweep(benchmark, regalloc_rows):
    rows = benchmark.pedantic(
        lambda: run_split_regalloc(k_values=(8, 12), n=32),
        rounds=1, iterations=1)
    assert rows
