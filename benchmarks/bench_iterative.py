"""Experiment S4b — §4 direction: iterative compilation.

Hill-climbing over the offline pipeline's configuration space (unroll
factor, vectorization, pass toggles), each candidate *measured* on the
target simulator instead of predicted.  Expected shape: the best-found
configuration is never worse than the fixed -O2-style default, and
strictly better for some kernels (typically via unrolling choices the
default heuristics would not risk).
"""

import pytest

from repro.bench import format_table
from repro.bench.experiments import run_iterative
from repro.targets import SPARC, X86

from conftest import register_report

KERNELS = ["saxpy_fp", "sum_u8", "sdot", "prefix_sum", "fir"]


@pytest.fixture(scope="module")
def iterative_rows():
    rows = run_iterative(KERNELS, X86, budget=16, n=192)
    rows += run_iterative(["prefix_sum", "fir"], SPARC, budget=16,
                          n=192)
    table = format_table(
        ["kernel", "target", "default", "best found", "config",
         "speedup", "evals"],
        [(r.kernel, r.target, r.default_cycles, r.best_cycles,
          r.best_label, r.speedup, r.evaluations) for r in rows],
        title="Iterative compilation — measured search vs default "
              "pipeline")
    register_report("iterative", table)
    return rows


class TestIterative:
    def test_never_worse_than_default(self, iterative_rows):
        for row in iterative_rows:
            assert row.best_cycles <= row.default_cycles

    def test_strictly_better_somewhere(self, iterative_rows):
        improved = [r for r in iterative_rows if r.speedup > 1.02]
        assert len(improved) >= 2

    def test_search_stays_within_budget(self, iterative_rows):
        for row in iterative_rows:
            assert row.evaluations <= 16


def test_bench_hill_climb(benchmark, iterative_rows):
    rows = benchmark.pedantic(
        lambda: run_iterative(["prefix_sum"], X86, budget=6, n=96),
        rounds=1, iterations=1)
    assert rows
