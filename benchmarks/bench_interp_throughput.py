"""Execution-core throughput: fast and tier-2 vs reference engines.

The fast engines (predecoded closure threading + type-specialized
semantics kernels) and the tier-2 whole-function translations layered
on top of them exist to make the host-side execution layer — the
slowest path in every experiment — cheap.  This bench measures VM and
simulator throughput in MIPS (million executed instructions per
second) for all three engines across the Table 1 kernels, asserting
along the way that the engines execute *identical* instruction and
cycle counts (the perf claim is meaningless without the parity claim).

The ``osr_loop`` row measures the on-stack-replacement path: one long
unannotated call that can only reach tier-2 by promoting at the loop
header mid-call, timed with OSR off (the pure block tier) and on; its
``tiering`` stats in the JSON prove the entry actually fired.

The machine-readable ``BENCH_interp_throughput.json`` anchors the perf
trajectory per PR; the CI smoke job fails if the fast engine ever
regresses below the reference engine, tier-2 below the block-threaded
fast engine, or the OSR-enabled tier below the block tier (sanity
floors, not flaky absolute thresholds).
"""

import time

import pytest

from repro.bench import format_table
from repro.core import deploy, offline_compile
from repro.engine import FAST, REFERENCE, TIER2
from repro.semantics import Memory
from repro.targets import X86, Simulator
from repro.vm import VM
from repro.workloads import TABLE1

from conftest import SMOKE, register_report

KERNELS = ("sum_u8",) if SMOKE else tuple(TABLE1)
N = 64 if SMOKE else 512
SEED = 7
REPEATS = 3 if SMOKE else 5
MEMORY_BYTES = 1 << 21
ENGINES = (FAST, TIER2, REFERENCE)

#: the OSR workload: one long unannotated call, so the only road to
#: tier-2 is a mid-call loop-entry promotion.  Full-size runs clear
#: the >= 1e5 back edges the acceptance floor is stated over.
OSR_SOURCE = (
    "int f(int n) { int s = 0;"
    "  for (int i = 0; i < n; i++) s += i * 3 - (s >> 2);"
    "  return s; }"
)
N_OSR = 5_000 if SMOKE else 200_000

#: smoke-size calls finish in well under a millisecond — far inside
#: timer/scheduler noise — so the timed region batches several calls
#: and reports the per-call best.  Full-size calls are long enough on
#: their own.
CALLS = 16 if SMOKE else 1


def _vm_measure(artifact, kernel, engine, osr=False):
    """(per-call instructions, best per-call seconds) for the VM.

    The fast/tier-2 rows pin ``osr=False``: OSR would mid-call-promote
    the block tier on any loopy kernel, and the fast row is meant to
    measure the block tier itself (the OSR rows below measure the
    promotion)."""
    best = float("inf")
    instructions = None
    for _ in range(REPEATS):
        memory = Memory(MEMORY_BYTES)
        run = kernel.prepare(memory, N, SEED)
        vm = VM(artifact.bytecode, memory=memory, verify=False,
                engine=engine, osr=osr)
        start = time.perf_counter()
        for _ in range(CALLS):
            vm.call(kernel.entry, run.args)
        best = min(best, (time.perf_counter() - start) / CALLS)
        instructions = vm.instructions_executed // CALLS
    return instructions, best


def _sim_measure(compiled, kernel, engine, osr=False):
    """(per-call (instructions, cycles), best per-call seconds)."""
    best = float("inf")
    counts = None
    for _ in range(REPEATS):
        memory = Memory(MEMORY_BYTES)
        run = kernel.prepare(memory, N, SEED)
        simulator = Simulator(compiled, memory, engine=engine, osr=osr)
        start = time.perf_counter()
        for _ in range(CALLS):
            result = simulator.run(kernel.entry, run.args)
        best = min(best, (time.perf_counter() - start) / CALLS)
        counts = (result.instructions, result.cycles)
    return counts, best


def _osr_measurement():
    """The OSR row: one long single call, block tier vs OSR-enabled
    tier (plus the reference for count parity), on both machines."""
    artifact = offline_compile(OSR_SOURCE)
    compiled = deploy(artifact, X86, "split")
    row = {"kernel": "osr_loop", "n": N_OSR}
    stats = {}

    vm_counts = {}
    vm_mips = {}
    for label, osr in (("fast", False), ("osr", True)):
        best = float("inf")
        for _ in range(REPEATS):
            vm = VM(artifact.bytecode, verify=False, engine=FAST,
                    osr=osr)
            start = time.perf_counter()
            vm.call("f", [N_OSR])
            best = min(best, time.perf_counter() - start)
        vm_counts[label] = vm.instructions_executed
        vm_mips[label] = vm.instructions_executed / best / 1e6
        if osr:
            stats["vm"] = vm.tiering_stats()
    reference = VM(artifact.bytecode, verify=False, engine=REFERENCE)
    reference.call("f", [N_OSR])
    assert vm_counts["fast"] == vm_counts["osr"] == \
        reference.instructions_executed, \
        "OSR changed the executed instruction count"
    assert stats["vm"]["osr_entries"] >= 1, \
        "the OSR row must actually enter tier-2 mid-call"

    sim_counts = {}
    sim_mips = {}
    for label, osr in (("fast", False), ("osr", True)):
        best = float("inf")
        for _ in range(REPEATS):
            sim = Simulator(compiled, Memory(), engine=FAST, osr=osr)
            start = time.perf_counter()
            result = sim.run("f", [N_OSR])
            best = min(best, time.perf_counter() - start)
        sim_counts[label] = (result.instructions, result.cycles)
        sim_mips[label] = result.instructions / best / 1e6
        if osr:
            stats["sim"] = sim.tiering_stats()
    ref_result = Simulator(compiled, Memory(),
                           engine=REFERENCE).run("f", [N_OSR])
    assert sim_counts["fast"] == sim_counts["osr"] == \
        (ref_result.instructions, ref_result.cycles), \
        "OSR changed the modeled instruction/cycle counts"
    assert stats["sim"]["osr_entries"] >= 1

    row.update({
        "vm_instructions": vm_counts["osr"],
        "vm_fast_mips": vm_mips["fast"],
        "vm_osr_mips": vm_mips["osr"],
        "vm_tier2_osr_over_fast": vm_mips["osr"] / vm_mips["fast"],
        "sim_instructions": sim_counts["osr"][0],
        "sim_cycles": sim_counts["osr"][1],
        "sim_fast_mips": sim_mips["fast"],
        "sim_osr_mips": sim_mips["osr"],
        "sim_tier2_osr_over_fast": sim_mips["osr"] / sim_mips["fast"],
        "tiering": stats,
    })
    return row


@pytest.fixture(scope="module")
def measurements():
    rows = []
    for name in KERNELS:
        kernel = TABLE1[name]
        artifact = offline_compile(kernel.source)
        compiled = deploy(artifact, X86, "split")

        vm = {}
        for engine in ENGINES:
            instructions, seconds = _vm_measure(artifact, kernel,
                                                engine)
            vm[engine] = (instructions, instructions / seconds / 1e6)
        for engine in (FAST, TIER2):
            assert vm[engine][0] == vm[REFERENCE][0], \
                f"{name}: {engine} VM executed a different " \
                f"instruction count than the reference"

        sim = {}
        for engine in ENGINES:
            counts, seconds = _sim_measure(compiled, kernel, engine)
            sim[engine] = (counts, counts[0] / seconds / 1e6)
        for engine in (FAST, TIER2):
            assert sim[engine][0] == sim[REFERENCE][0], \
                f"{name}: {engine} simulator disagrees with the " \
                f"reference on instructions/cycles"

        rows.append({
            "kernel": name,
            "vm_instructions": vm[FAST][0],
            "vm_fast_mips": vm[FAST][1],
            "vm_tier2_mips": vm[TIER2][1],
            "vm_reference_mips": vm[REFERENCE][1],
            "vm_speedup": vm[FAST][1] / vm[REFERENCE][1],
            "vm_tier2_speedup": vm[TIER2][1] / vm[REFERENCE][1],
            "vm_tier2_over_fast": vm[TIER2][1] / vm[FAST][1],
            "sim_instructions": sim[FAST][0][0],
            "sim_cycles": sim[FAST][0][1],
            "sim_fast_mips": sim[FAST][1],
            "sim_tier2_mips": sim[TIER2][1],
            "sim_reference_mips": sim[REFERENCE][1],
            "sim_speedup": sim[FAST][1] / sim[REFERENCE][1],
            "sim_tier2_speedup": sim[TIER2][1] / sim[REFERENCE][1],
            "sim_tier2_over_fast": sim[TIER2][1] / sim[FAST][1],
        })
    return rows


@pytest.fixture(scope="module")
def osr_measurement():
    return _osr_measurement()


@pytest.fixture(scope="module")
def report(measurements, osr_measurement):
    table_rows = [
        (row["kernel"],
         f"{row['vm_tier2_mips']:.2f}", f"{row['vm_fast_mips']:.2f}",
         f"{row['vm_reference_mips']:.2f}",
         f"{row['vm_tier2_speedup']:.1f}x",
         f"{row['sim_tier2_mips']:.2f}", f"{row['sim_fast_mips']:.2f}",
         f"{row['sim_reference_mips']:.2f}",
         f"{row['sim_tier2_speedup']:.1f}x")
        for row in measurements
    ]
    osr = osr_measurement
    table_rows.append(
        (f"osr_loop (n={osr['n']})",
         f"{osr['vm_osr_mips']:.2f}", f"{osr['vm_fast_mips']:.2f}",
         "-", f"{osr['vm_tier2_osr_over_fast']:.1f}x",
         f"{osr['sim_osr_mips']:.2f}", f"{osr['sim_fast_mips']:.2f}",
         "-", f"{osr['sim_tier2_osr_over_fast']:.1f}x"))
    table = format_table(
        ["kernel", "VM t2", "VM fast", "VM ref", "VM t2 gain",
         "sim t2", "sim fast", "sim ref", "sim t2 gain"],
        table_rows,
        title=f"Execution-core throughput, MIPS (n={N}, "
              f"best of {REPEATS}; osr_loop gains are over the "
              f"block tier)")
    register_report("interp_throughput", table, data={
        "n": N,
        "repeats": REPEATS,
        "engines": list(ENGINES),
        "kernels": measurements,
        "osr": osr,
    })
    return table


class TestThroughput:
    def test_fast_vm_never_below_reference(self, measurements, report):
        """The CI sanity floor: predecode must never lose to the
        string ladder."""
        for row in measurements:
            assert row["vm_speedup"] >= 1.0, \
                f"{row['kernel']}: fast VM slower than reference " \
                f"({row['vm_speedup']:.2f}x)"

    def test_fast_simulator_never_below_reference(self, measurements):
        for row in measurements:
            assert row["sim_speedup"] >= 1.0, \
                f"{row['kernel']}: fast simulator slower than " \
                f"reference ({row['sim_speedup']:.2f}x)"

    def test_tier2_never_below_fast(self, measurements, report):
        """Whole-function translation must not lose to the block-
        threaded tier it is promoted from — on either engine."""
        for row in measurements:
            assert row["vm_tier2_over_fast"] >= 1.0, \
                f"{row['kernel']}: tier-2 VM slower than fast " \
                f"({row['vm_tier2_over_fast']:.2f}x)"
            assert row["sim_tier2_over_fast"] >= 1.0, \
                f"{row['kernel']}: tier-2 simulator slower than fast " \
                f"({row['sim_tier2_over_fast']:.2f}x)"

    @pytest.mark.skipif(SMOKE, reason="full-size runs only")
    def test_saxpy_meets_speedup_targets(self, measurements):
        """The tentpole targets on the anchor kernel — asserted with
        headroom below the committed numbers to stay robust to slow
        CI hosts."""
        row = next(r for r in measurements if r["kernel"] == "saxpy_fp")
        assert row["vm_speedup"] >= 3.0, \
            f"VM speedup degraded to {row['vm_speedup']:.2f}x"
        assert row["sim_speedup"] >= 2.0, \
            f"simulator speedup degraded to {row['sim_speedup']:.2f}x"

    def test_osr_never_below_fast(self, osr_measurement, report):
        """The OSR sanity floor (smoke included): entering tier-2
        mid-call must never lose to staying on the block tier — on
        either machine."""
        row = osr_measurement
        assert row["vm_tier2_osr_over_fast"] >= 1.0, \
            f"OSR VM slower than the block tier " \
            f"({row['vm_tier2_osr_over_fast']:.2f}x)"
        assert row["sim_tier2_osr_over_fast"] >= 1.0, \
            f"OSR simulator slower than the block tier " \
            f"({row['sim_tier2_osr_over_fast']:.2f}x)"

    @pytest.mark.skipif(SMOKE, reason="full-size runs only")
    def test_osr_single_call_speedup_target(self, osr_measurement):
        """The tentpole acceptance floor: >= 1.5x the block tier on a
        single >= 1e5-back-edge call (asserted with headroom under the
        committed ~1.8x to stay robust to slow CI hosts)."""
        assert osr_measurement["vm_tier2_osr_over_fast"] >= 1.5, \
            f"OSR VM gain degraded to " \
            f"{osr_measurement['vm_tier2_osr_over_fast']:.2f}x"

    @pytest.mark.skipif(SMOKE, reason="full-size runs only")
    def test_saxpy_tier2_doubles_fast_mips(self, measurements):
        """The tier-2 tentpole target: >= 2x the block-threaded MIPS
        on the anchor kernel."""
        row = next(r for r in measurements if r["kernel"] == "saxpy_fp")
        assert row["vm_tier2_over_fast"] >= 2.0, \
            f"tier-2 VM gain over fast degraded to " \
            f"{row['vm_tier2_over_fast']:.2f}x"


def test_bench_fast_vm_call(benchmark):
    """Steady-state fast-engine VM latency on the anchor kernel."""
    kernel = TABLE1["sum_u8" if SMOKE else "saxpy_fp"]
    artifact = offline_compile(kernel.source)
    memory = Memory(MEMORY_BYTES)
    run = kernel.prepare(memory, N, SEED)
    vm = VM(artifact.bytecode, memory=memory, verify=False, engine=FAST)
    benchmark.pedantic(lambda: vm.call(kernel.entry, run.args),
                       rounds=5, iterations=3)
