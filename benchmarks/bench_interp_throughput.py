"""Execution-core throughput: fast vs reference engines.

The fast engines (predecoded closure threading + type-specialized
semantics kernels) exist to make the host-side execution layer — the
slowest path in every experiment — cheap.  This bench measures VM and
simulator throughput in MIPS (million executed instructions per
second) for both engines across the Table 1 kernels, asserting along
the way that the engines execute *identical* instruction and cycle
counts (the perf claim is meaningless without the parity claim).

The machine-readable ``BENCH_interp_throughput.json`` anchors the perf
trajectory per PR; the CI smoke job fails if the fast engine ever
regresses below the reference engine (a sanity floor, not a flaky
absolute threshold).
"""

import time

import pytest

from repro.bench import format_table
from repro.core import deploy, offline_compile
from repro.engine import FAST, REFERENCE
from repro.semantics import Memory
from repro.targets import X86, Simulator
from repro.vm import VM
from repro.workloads import TABLE1

from conftest import SMOKE, register_report

KERNELS = ("sum_u8",) if SMOKE else tuple(TABLE1)
N = 64 if SMOKE else 512
SEED = 7
REPEATS = 3 if SMOKE else 5
MEMORY_BYTES = 1 << 21
ENGINES = (FAST, REFERENCE)


def _vm_measure(artifact, kernel, engine):
    """(instructions, best seconds) for one VM call."""
    best = float("inf")
    instructions = None
    for _ in range(REPEATS):
        memory = Memory(MEMORY_BYTES)
        run = kernel.prepare(memory, N, SEED)
        vm = VM(artifact.bytecode, memory=memory, verify=False,
                engine=engine)
        start = time.perf_counter()
        vm.call(kernel.entry, run.args)
        best = min(best, time.perf_counter() - start)
        instructions = vm.instructions_executed
    return instructions, best


def _sim_measure(compiled, kernel, engine):
    """(instructions, cycles, best seconds) for one simulated call."""
    best = float("inf")
    counts = None
    for _ in range(REPEATS):
        memory = Memory(MEMORY_BYTES)
        run = kernel.prepare(memory, N, SEED)
        simulator = Simulator(compiled, memory, engine=engine)
        start = time.perf_counter()
        result = simulator.run(kernel.entry, run.args)
        best = min(best, time.perf_counter() - start)
        counts = (result.instructions, result.cycles)
    return counts, best


@pytest.fixture(scope="module")
def measurements():
    rows = []
    for name in KERNELS:
        kernel = TABLE1[name]
        artifact = offline_compile(kernel.source)
        compiled = deploy(artifact, X86, "split")

        vm = {}
        for engine in ENGINES:
            instructions, seconds = _vm_measure(artifact, kernel,
                                                engine)
            vm[engine] = (instructions, instructions / seconds / 1e6)
        assert vm[FAST][0] == vm[REFERENCE][0], \
            f"{name}: engines executed different instruction counts"

        sim = {}
        for engine in ENGINES:
            counts, seconds = _sim_measure(compiled, kernel, engine)
            sim[engine] = (counts, counts[0] / seconds / 1e6)
        assert sim[FAST][0] == sim[REFERENCE][0], \
            f"{name}: engines disagree on instructions/cycles"

        rows.append({
            "kernel": name,
            "vm_instructions": vm[FAST][0],
            "vm_fast_mips": vm[FAST][1],
            "vm_reference_mips": vm[REFERENCE][1],
            "vm_speedup": vm[FAST][1] / vm[REFERENCE][1],
            "sim_instructions": sim[FAST][0][0],
            "sim_cycles": sim[FAST][0][1],
            "sim_fast_mips": sim[FAST][1],
            "sim_reference_mips": sim[REFERENCE][1],
            "sim_speedup": sim[FAST][1] / sim[REFERENCE][1],
        })
    return rows


@pytest.fixture(scope="module")
def report(measurements):
    table_rows = [
        (row["kernel"],
         f"{row['vm_fast_mips']:.2f}", f"{row['vm_reference_mips']:.2f}",
         f"{row['vm_speedup']:.1f}x",
         f"{row['sim_fast_mips']:.2f}",
         f"{row['sim_reference_mips']:.2f}",
         f"{row['sim_speedup']:.1f}x")
        for row in measurements
    ]
    table = format_table(
        ["kernel", "VM fast", "VM ref", "VM gain",
         "sim fast", "sim ref", "sim gain"],
        table_rows,
        title=f"Execution-core throughput, MIPS (n={N}, "
              f"best of {REPEATS})")
    register_report("interp_throughput", table, data={
        "n": N,
        "repeats": REPEATS,
        "engines": list(ENGINES),
        "kernels": measurements,
    })
    return table


class TestThroughput:
    def test_fast_vm_never_below_reference(self, measurements, report):
        """The CI sanity floor: predecode must never lose to the
        string ladder."""
        for row in measurements:
            assert row["vm_speedup"] >= 1.0, \
                f"{row['kernel']}: fast VM slower than reference " \
                f"({row['vm_speedup']:.2f}x)"

    def test_fast_simulator_never_below_reference(self, measurements):
        for row in measurements:
            assert row["sim_speedup"] >= 1.0, \
                f"{row['kernel']}: fast simulator slower than " \
                f"reference ({row['sim_speedup']:.2f}x)"

    @pytest.mark.skipif(SMOKE, reason="full-size runs only")
    def test_saxpy_meets_speedup_targets(self, measurements):
        """The tentpole targets on the anchor kernel — asserted with
        headroom below the committed numbers to stay robust to slow
        CI hosts."""
        row = next(r for r in measurements if r["kernel"] == "saxpy_fp")
        assert row["vm_speedup"] >= 3.0, \
            f"VM speedup degraded to {row['vm_speedup']:.2f}x"
        assert row["sim_speedup"] >= 2.0, \
            f"simulator speedup degraded to {row['sim_speedup']:.2f}x"


def test_bench_fast_vm_call(benchmark):
    """Steady-state fast-engine VM latency on the anchor kernel."""
    kernel = TABLE1["sum_u8" if SMOKE else "saxpy_fp"]
    artifact = offline_compile(kernel.source)
    memory = Memory(MEMORY_BYTES)
    run = kernel.prepare(memory, N, SEED)
    vm = VM(artifact.bytecode, memory=memory, verify=False, engine=FAST)
    benchmark.pedantic(lambda: vm.call(kernel.entry, run.args),
                       rounds=5, iterations=3)
