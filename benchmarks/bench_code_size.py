"""Experiment S2a — §2.1 claim [15]: bytecode is a compact
program representation.

Encoded PVI instruction bytes vs generated native code bytes (incl.
per-function prologue/epilogue) for the whole kernel corpus.  Expected
shape: smaller than fixed-width RISC encodings, comparable to
variable-length x86 (which is famously dense — the original study [15]
compared against ARM-class embedded targets).
"""

import pytest

from repro.bench import format_table
from repro.bench.experiments import run_code_size

from conftest import register_report


@pytest.fixture(scope="module")
def size_rows():
    rows = run_code_size()
    body = [(r.kernel, r.pvi_bytes, r.native.get("x86"),
             r.native.get("sparc"), r.native.get("ppc"))
            for r in rows]
    totals = ("TOTAL",
              sum(r.pvi_bytes for r in rows),
              sum(r.native.get("x86", 0) for r in rows),
              sum(r.native.get("sparc", 0) for r in rows),
              sum(r.native.get("ppc", 0) for r in rows))
    table = format_table(
        ["kernel", "PVI bytes", "x86", "sparc", "ppc"],
        body + [totals],
        title="Code size — portable bytecode vs native (bytes)")
    register_report("code_size", table)
    return rows


class TestCompactness:
    def test_smaller_than_every_risc_target(self, size_rows):
        total_pvi = sum(r.pvi_bytes for r in size_rows)
        for target in ("sparc", "ppc"):
            total_native = sum(r.native[target] for r in size_rows)
            assert total_pvi < total_native, target

    def test_comparable_to_x86(self, size_rows):
        total_pvi = sum(r.pvi_bytes for r in size_rows)
        total_x86 = sum(r.native["x86"] for r in size_rows)
        assert total_pvi < 1.4 * total_x86

    def test_majority_of_kernels_beat_risc(self, size_rows):
        wins = sum(1 for r in size_rows
                   if r.pvi_bytes < r.native["sparc"])
        assert wins >= len(size_rows) * 2 // 3


def test_bench_size_measurement(benchmark, size_rows):
    rows = benchmark.pedantic(run_code_size, rounds=1, iterations=1)
    assert rows
