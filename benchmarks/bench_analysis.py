"""Experiment A1 — the dataflow-analysis plane's cost and payoff.

The split thesis applied to the analysis plane itself: the worklist
solvers (DESIGN.md §6) run once, offline, per content token — so
their wall-clock must stay in the "offline is allowed to be slow"
budget (milliseconds per function), while their product pays off
online as elided OSR entry guards in both tier-2 engines and as the
deploy-time admission lint.

Reported per kernel: analysis wall-clock, fuel blocks, proven lane
locals and access widths; plus the OSR guard-elision counters from
warming each engine and a tier-2 throughput floor check against the
block-threaded tier (tier-2 with facts must never be slower than the
tier it replaces).
"""

import time

import pytest

from repro.analysis import module_facts
from repro.bench import format_table
from repro.core import deploy, offline_compile
from repro.semantics import Memory
from repro.targets import X86, dispatch
from repro.vm import VM, threaded
from repro.workloads import ALL_KERNELS

from conftest import SMOKE, register_report

#: the OSR row: a vectorized loop whose tier-2 entries carry lane
#: guards the analysis proves redundant
OSR_KERNEL = "saxpy_fp"
KERNELS = [OSR_KERNEL] if SMOKE else sorted(ALL_KERNELS)
N = 64 if SMOKE else 512
ROUNDS = 2 if SMOKE else 8


def _analysis_row(name):
    kernel = ALL_KERNELS[name]
    artifact = offline_compile(kernel.source, name)
    start = time.perf_counter()
    table = module_facts(artifact.bytecode)
    elapsed_ms = (time.perf_counter() - start) * 1e3
    blocks = sum(len(f.blocks) for f in table.functions.values()
                 if f is not None)
    lanes = sum(len(f.lane_locals) for f in table.functions.values()
                if f is not None)
    widths = sorted({w for f in table.functions.values()
                     if f is not None for w in f.access_widths})
    return artifact, table, (name, len(table.functions), blocks,
                             lanes, widths, f"{elapsed_ms:.2f}")


def _guard_counters(name):
    """Warm both tier-2 engines on a *fresh* artifact (facts caches
    live on the function objects, so a pre-analyzed artifact would
    hide the warm-path provenance); return the build-site counters."""
    kernel = ALL_KERNELS[name]
    artifact = offline_compile(kernel.source, name)
    threaded.reset_tier2_build_stats()
    threaded.warm_bytecode_module(artifact.bytecode)
    vm_stats = threaded.tier2_build_stats()
    compiled = deploy(artifact, X86, flow="split")
    dispatch.reset_tier2_build_stats()
    dispatch.warm_module(compiled)
    sim_stats = dispatch.tier2_build_stats()
    return artifact, vm_stats, sim_stats


def _vm_throughput(bytecode, kernel, engine):
    """Instructions per second over ROUNDS runs of the kernel."""
    best = 0.0
    for _ in range(ROUNDS):
        memory = Memory(1 << 21)
        run = kernel.prepare(memory, N)
        vm = VM(bytecode, memory=memory, engine=engine)
        start = time.perf_counter()
        vm.call(kernel.entry, run.args)
        elapsed = time.perf_counter() - start
        best = max(best, vm.instructions_executed / elapsed)
    return best


@pytest.fixture(scope="module")
def analysis_data():
    rows = []
    per_kernel = {}
    for name in KERNELS:
        artifact, table, row = _analysis_row(name)
        rows.append(row)
        per_kernel[name] = {
            "functions": row[1], "blocks": row[2],
            "lane_locals": row[3], "analysis_ms": float(row[5]),
        }

    osr_artifact, vm_stats, sim_stats = _guard_counters(OSR_KERNEL)
    kernel = ALL_KERNELS[OSR_KERNEL]
    fast_ips = _vm_throughput(osr_artifact.bytecode, kernel, "fast")
    tier2_ips = _vm_throughput(osr_artifact.bytecode, kernel, "tier2")

    table = format_table(
        ["kernel", "funcs", "blocks", "lane locals", "widths",
         "analysis ms"],
        rows,
        title="Dataflow plane cost per workload kernel")
    guards = format_table(
        ["engine", "facts warm", "guards elided", "guards kept"],
        [("vm tier-2", vm_stats["facts_warm"],
          vm_stats["guards_elided"], vm_stats["guards_kept"]),
         ("sim tier-2", sim_stats["facts_warm"],
          sim_stats["guards_elided"], sim_stats["guards_kept"])],
        title=f"OSR guard elision after warming '{OSR_KERNEL}'")
    register_report(
        "analysis", table + "\n\n" + guards,
        data={
            "kernels": per_kernel,
            "osr": {
                "kernel": OSR_KERNEL,
                "vm": {k: vm_stats[k] for k in
                       ("facts_warm", "guards_elided", "guards_kept")},
                "sim": {k: sim_stats[k] for k in
                        ("facts_warm", "guards_elided", "guards_kept")},
            },
            "throughput_ips": {"fast": fast_ips, "tier2": tier2_ips},
        })
    return {"per_kernel": per_kernel, "vm": vm_stats, "sim": sim_stats,
            "fast_ips": fast_ips, "tier2_ips": tier2_ips}


class TestAnalysisPlane:
    def test_analysis_stays_in_offline_budget(self, analysis_data):
        # milliseconds per module, not seconds: the offline side is
        # allowed to be slow, but not *that* slow
        for name, entry in analysis_data["per_kernel"].items():
            assert entry["analysis_ms"] < 500.0, name

    def test_osr_row_elides_guards_on_both_engines(self, analysis_data):
        assert analysis_data["vm"]["guards_elided"] > 0
        assert analysis_data["sim"]["guards_elided"] > 0
        assert analysis_data["vm"]["guards_kept"] == 0
        assert analysis_data["sim"]["guards_kept"] == 0

    def test_warming_prepays_facts(self, analysis_data):
        assert analysis_data["vm"]["facts_warm"] > 0
        assert analysis_data["sim"]["facts_warm"] > 0
        assert analysis_data["vm"]["facts_request"] == 0
        assert analysis_data["sim"]["facts_request"] == 0

    def test_tier2_throughput_floor(self, analysis_data):
        # the facts-fed tier-2 must not fall below the block tier it
        # supersedes (generous margin: timing noise, CI machines)
        assert analysis_data["tier2_ips"] > \
            0.5 * analysis_data["fast_ips"]


def test_bench_analysis_measurement(benchmark):
    artifact = offline_compile(ALL_KERNELS[OSR_KERNEL].source,
                               OSR_KERNEL)

    def fresh_facts():
        for func in artifact.bytecode.functions.values():
            if hasattr(func, "_pvi_facts_cache"):
                del func._pvi_facts_cache
        return module_facts(artifact.bytecode)

    table = benchmark.pedantic(fresh_facts, rounds=ROUNDS, iterations=1)
    assert table.functions
