"""The serving edge under load: admission, coalescing, routing.

A live in-process :class:`EdgeServer` (real sockets, real HTTP) is
driven at three offered-load points plus two traffic mixes, and the
edge's three claims are measured:

* **admission control bounds latency**: below the queue bound nothing
  is shed; past it, excess load gets structured 503s while the
  *accepted* requests keep a p99 bounded by queue depth — not by
  offered load;
* **coalescing absorbs herds**: a thundering herd of identical
  requests collapses onto one queue slot and one compilation;
* **adaptive routing matches substrate to temperature**: cold
  fan-outs land on the process route, warm residual compiles on the
  thread route (asserted on the full run; the smoke run uses inline
  executors for speed).
"""

from __future__ import annotations

import asyncio
import random
import time

import pytest

from repro.bench import format_table
from repro.service.edge import (
    EdgeClient, EdgeConfig, EdgeServer, Tenant, TenantTable,
)
from repro.workloads import TABLE1

from conftest import SMOKE, register_report

SAXPY = TABLE1["saxpy_fp"].source
SUM_U8 = TABLE1["sum_u8"].source

WORKERS = 4
QUEUE_DEPTH = 8
API_KEY = "bench-key"

#: offered-load ladder: below the admission threshold (light), around
#: it (saturated), far past it (overload)
POINTS = [("light", 4), ("saturated", 12), ("overload", 24 if SMOKE
                                            else 64)]
HERD = 8 if SMOKE else 32
ZIPF_REQUESTS = 16 if SMOKE else 48
ZIPF_MODULES = 4 if SMOKE else 8

#: smoke runs trade the process pool for inline executors — boots in
#: milliseconds, still exercises the whole admission/coalescing path
COLD_EXECUTOR = "inline" if SMOKE else "process"
WARM_EXECUTOR = "inline" if SMOKE else "thread"


def edge_config(**overrides) -> EdgeConfig:
    tenants = TenantTable([Tenant("bench", api_key=API_KEY,
                                  rate=100000, burst=100000)])
    defaults = dict(port=0, workers=WORKERS, queue_depth=QUEUE_DEPTH,
                    max_wait_s=None, cold_executor=COLD_EXECUTOR,
                    warm_executor=WARM_EXECUTOR, tenants=tenants)
    defaults.update(overrides)
    return EdgeConfig(**defaults)


async def _one_deploy(port, name, targets=("x86",)):
    """One request on its own connection -> (status, latency_s)."""
    async with EdgeClient("127.0.0.1", port, api_key=API_KEY) as c:
        start = time.perf_counter()
        status, _, _ = await c.deploy(SAXPY, list(targets), name=name)
        return status, time.perf_counter() - start


def _percentile(samples, p):
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(p * len(ordered)))
    return ordered[index]


def _summarize(results, stats):
    accepted = [lat for status, lat in results if status == 200]
    shed = [lat for status, lat in results if status == 503]
    edge = stats["edge"]
    return {
        "offered": len(results),
        "accepted": len(accepted),
        "shed": edge["shed"]["total"],
        "shed_queue_full": edge["shed"]["queue_full"],
        "shed_overload": edge["shed"]["overload"],
        "coalesced": edge["coalesced"],
        "accepted_p50_ms": round(
            _percentile(accepted, 0.50) * 1e3, 3),
        "accepted_p99_ms": round(
            _percentile(accepted, 0.99) * 1e3, 3),
        "shed_p99_ms": round(_percentile(shed, 0.99) * 1e3, 3),
        "ewma_service_ms": edge["queue"]["ewma_service_ms"],
    }


async def _run_point(offered: int) -> dict:
    """One offered-load point on a fresh server: ``offered``
    concurrent distinct deploys arriving simultaneously."""
    async with EdgeServer(edge_config()) as edge:
        results = await asyncio.gather(
            *(_one_deploy(edge.port, f"m{i}") for i in range(offered)))
        async with EdgeClient("127.0.0.1", edge.port,
                              api_key=API_KEY) as c:
            _, _, stats = await c.stats()
    return _summarize(results, stats)


async def _run_herd() -> dict:
    """HERD identical concurrent requests: one queue slot, one
    compile, every caller served."""
    async with EdgeServer(edge_config()) as edge:
        results = await asyncio.gather(
            *(_one_deploy(edge.port, "herd") for _ in range(HERD)))
        async with EdgeClient("127.0.0.1", edge.port,
                              api_key=API_KEY) as c:
            _, _, stats = await c.stats()
    summary = _summarize(results, stats)
    summary["service_coalesced"] = \
        stats["service"]["coalesced_requests"]
    return summary


async def _run_zipf() -> dict:
    """A zipf-weighted mix over ZIPF_MODULES distinct modules: the
    popular head coalesces and hits caches, the tail stays cold."""
    rng = random.Random(1009)
    weights = [1.0 / rank for rank in range(1, ZIPF_MODULES + 1)]
    names = rng.choices([f"z{i}" for i in range(ZIPF_MODULES)],
                        weights=weights, k=ZIPF_REQUESTS)
    gate = asyncio.Semaphore(2 * WORKERS)

    async def one(name):
        async with gate:
            return await _one_deploy(edge.port, name)

    async with EdgeServer(edge_config()) as edge:
        results = await asyncio.gather(*(one(n) for n in names))
        async with EdgeClient("127.0.0.1", edge.port,
                              api_key=API_KEY) as c:
            _, _, stats = await c.stats()
    summary = _summarize(results, stats)
    summary["distinct_modules"] = ZIPF_MODULES
    return summary


async def _run_routing() -> dict:
    """Cold fan-outs, then new targets on the same (now warm)
    artifacts: the per-route counters are the policy's proof."""
    async with EdgeServer(edge_config()) as edge:
        async with EdgeClient("127.0.0.1", edge.port,
                              api_key=API_KEY) as c:
            # phase 1: two cold fan-outs
            for name, source in (("r0", SAXPY), ("r1", SUM_U8)):
                await c.deploy(source, ["x86", "arm"], name=name)
            # phase 2: the same artifacts onto fresh targets — not
            # memoized, artifact already warm
            for name, source in (("r0", SAXPY), ("r1", SUM_U8)):
                await c.deploy(source, ["dsp", "ppc"], name=name)
            _, _, stats = await c.stats()
    return stats["edge"]["routes"]


@pytest.fixture(scope="module")
def measurements():
    points = {name: asyncio.run(_run_point(offered))
              for name, offered in POINTS}
    herd = asyncio.run(_run_herd())
    zipf = asyncio.run(_run_zipf())
    routes = asyncio.run(_run_routing())
    return points, herd, zipf, routes


@pytest.fixture(scope="module")
def report(measurements):
    points, herd, zipf, routes = measurements
    rows = [(name, p["offered"], p["accepted"], p["shed"],
             p["coalesced"], f"{p['accepted_p50_ms']:.1f}",
             f"{p['accepted_p99_ms']:.1f}")
            for name, p in points.items()]
    rows.append(("herd (identical)", herd["offered"],
                 herd["accepted"], herd["shed"], herd["coalesced"],
                 f"{herd['accepted_p50_ms']:.1f}",
                 f"{herd['accepted_p99_ms']:.1f}"))
    rows.append((f"zipf ({zipf['distinct_modules']} modules)",
                 zipf["offered"], zipf["accepted"], zipf["shed"],
                 zipf["coalesced"], f"{zipf['accepted_p50_ms']:.1f}",
                 f"{zipf['accepted_p99_ms']:.1f}"))
    table = format_table(
        ["load point", "offered", "accepted", "shed", "coalesced",
         "p50 ms", "p99 ms"],
        rows,
        title=f"Serving edge — workers={WORKERS} "
              f"queue={QUEUE_DEPTH} routing="
              f"{COLD_EXECUTOR}/{WARM_EXECUTOR}")
    register_report("service_edge", table, data={
        "config": {"workers": WORKERS, "queue_depth": QUEUE_DEPTH,
                   "cold_executor": COLD_EXECUTOR,
                   "warm_executor": WARM_EXECUTOR},
        "points": points,
        "herd": herd,
        "zipf": zipf,
        "routes": routes,
    })
    return table


class TestServingEdge:
    def test_no_shedding_below_admission_threshold(self, measurements,
                                                   report):
        """Light load (offered < workers + queue bound) is never
        shed — admission control must be invisible until needed."""
        points = measurements[0]
        assert points["light"]["shed"] == 0
        assert points["light"]["accepted"] == \
            points["light"]["offered"]

    def test_overload_sheds_and_bounds_accepted_p99(
            self, measurements):
        """Past the bound the edge sheds — and the requests it *did*
        accept see latency bounded by queue depth, not offered load:
        accepted p99 stays under what serving the whole offered herd
        serially would have cost."""
        overload = measurements[0]["overload"]
        assert overload["shed"] > 0
        assert overload["accepted"] >= 1
        assert overload["accepted"] + overload["shed"] == \
            overload["offered"]
        backlog_bound_ms = (QUEUE_DEPTH + WORKERS + 1) * \
            max(overload["ewma_service_ms"], 1.0) / WORKERS * 4
        herd_serial_ms = overload["offered"] * \
            max(overload["ewma_service_ms"], 1.0) / WORKERS
        assert overload["accepted_p99_ms"] < \
            max(backlog_bound_ms, herd_serial_ms)
        # shed requests were turned away fast — no queue time at all
        assert overload["shed_p99_ms"] < \
            overload["accepted_p99_ms"] + 1000

    def test_herd_coalesces(self, measurements):
        """Identical concurrent requests ride one queue slot: the
        coalescing rate is (offered - 1) / offered and nothing is
        shed even though offered >> queue bound."""
        herd = measurements[1]
        assert herd["accepted"] == herd["offered"] == HERD
        assert herd["coalesced"] == HERD - 1
        assert herd["shed"] == 0

    def test_zipf_mix_coalesces_the_head(self, measurements):
        zipf = measurements[2]
        assert zipf["accepted"] + zipf["shed"] == zipf["offered"]
        # the popular head repeats: repeats either coalesce (in
        # flight) or hit caches (after) — some of each in practice
        assert zipf["coalesced"] >= 0

    @pytest.mark.skipif(SMOKE, reason="smoke runs use inline "
                        "executors; routing proof needs the real "
                        "process/thread split")
    def test_cold_routes_process_warm_routes_thread(
            self, measurements):
        routes = measurements[3]
        assert routes["policy"] == "first-fanout-cold"
        assert routes["cold"]["executor"] == "process"
        assert routes["warm"]["executor"] == "thread"
        assert routes["cold"]["submitted"] >= 2
        assert routes["warm"]["submitted"] >= 2

    def test_routing_counters_cover_all_submissions(
            self, measurements):
        routes = measurements[3]
        total = routes["cold"]["submitted"] + \
            routes["warm"]["submitted"]
        # 2 artifacts x 4 targets, nothing memoized twice
        assert total == 8
