"""Experiment S3a — §3/§5 claim: JIT compilers are constrained by CPU
and memory budgets, and split compilation moves the expensive analyses
offline.

Aggregated over all Table 1 kernels on x86: total online compile work
(instructions visited by the JIT), its analysis-only portion, the
resulting run-time cycles, and JIT wall-clock.  Expected shape: the
split flow spends *zero* online analysis yet reaches online-only's
code quality; online-only pays a multiple of offline-only's compile
budget.
"""

import pytest

from repro.bench import format_table
from repro.bench.experiments import run_jit_budget
from repro.targets import X86

from conftest import register_report


@pytest.fixture(scope="module")
def budget_rows():
    rows = run_jit_budget(X86, n=256)
    table = format_table(
        ["flow", "online work", "analysis work", "cycles",
         "jit ms"],
        rows,
        title="JIT compile budget across the Table 1 kernels (x86)")
    register_report("jit_budget", table)
    return {row[0]: row for row in rows}


class TestBudgetShape:
    def test_split_has_zero_online_analysis(self, budget_rows):
        assert budget_rows["split"][2] == 0

    def test_online_only_pays_analysis(self, budget_rows):
        assert budget_rows["online-only"][2] > 0

    def test_online_only_costs_more_than_offline_only(self, budget_rows):
        assert budget_rows["online-only"][1] > \
            1.3 * budget_rows["offline-only"][1]

    def test_split_code_fastest_or_tied(self, budget_rows):
        split_cycles = budget_rows["split"][3]
        assert split_cycles <= budget_rows["offline-only"][3]
        assert split_cycles <= 1.2 * budget_rows["online-only"][3]


def test_bench_budget_measurement(benchmark, budget_rows):
    rows = benchmark.pedantic(lambda: run_jit_budget(X86, n=96),
                              rounds=1, iterations=1)
    assert len(rows) == 3
